#include "spec/es_cfg.h"

#include <algorithm>
#include <set>
#include <sstream>

namespace sedspec::spec {

bool EsCfg::is_param(ParamId id) const {
  return std::find(params.begin(), params.end(), id) != params.end();
}

uint64_t EsCfg::edge_count() const {
  uint64_t n = 0;
  for (const auto& [site, b] : blocks) {
    if (b.kind == BlockKind::kConditional && !b.merged) {
      n += b.taken.observed ? 1 : 0;
      n += b.not_taken.observed ? 1 : 0;
    } else if (b.has_succ || b.ends) {
      n += 1;
    }
    n += b.fp_targets.size();
    for (const auto& [cmd, d] : b.cmd_dispatch) {
      n += d.observed ? 1 : 0;
    }
  }
  return n;
}

std::set<std::string> edge_keys(const EsCfg& cfg) {
  std::set<std::string> keys;
  auto site_str = [](SiteId s) { return std::to_string(s); };
  for (const auto& [key, site] : cfg.entry_dispatch) {
    keys.insert("entry:" + std::to_string(static_cast<int>(key.space)) + ":" +
                std::to_string(key.addr) + ":" + (key.is_write ? "w" : "r") +
                "->" + site_str(site));
  }
  for (const auto& [site, b] : cfg.blocks) {
    auto dir_key = [&](const CondDir& d, const char* label) {
      if (!d.observed) {
        return;
      }
      keys.insert("cond:" + site_str(site) + ":" + label + "->" +
                  (d.ends ? std::string("end") : site_str(d.succ)));
    };
    if (b.kind == BlockKind::kConditional && !b.merged) {
      dir_key(b.taken, "t");
      dir_key(b.not_taken, "n");
    } else if (b.has_succ) {
      keys.insert("seq:" + site_str(site) + "->" + site_str(b.succ));
    } else if (b.ends) {
      keys.insert("seq:" + site_str(site) + "->end");
    }
    for (const auto& [cmd, d] : b.cmd_dispatch) {
      if (d.observed) {
        keys.insert("cmd:" + site_str(site) + ":" + std::to_string(cmd) +
                    "->" + (d.ends ? std::string("end") : site_str(d.succ)));
      }
    }
    for (FuncAddr t : b.fp_targets) {
      keys.insert("itarget:" + site_str(site) + ":" + std::to_string(t));
    }
  }
  return keys;
}

std::string EsCfg::to_text(const sedspec::DeviceProgram& program) const {
  std::ostringstream out;
  out << "ES-CFG for " << device_name << "\n";
  out << "  trained rounds: " << trained_rounds << "\n";
  out << "  device state parameters:";
  for (ParamId p : params) {
    out << " " << program.layout().field(p).name;
  }
  out << "\n  entry dispatch:\n";
  for (const auto& [key, site] : entry_dispatch) {
    out << "    " << (key.space == sedspec::IoSpace::kPio ? "pio" : "mmio")
        << " 0x" << std::hex << key.addr << std::dec
        << (key.is_write ? " write" : " read") << " -> ";
    if (site == sedspec::kInvalidSite) {
      out << "(no instrumented block)\n";
    } else {
      out << blocks.at(site).name << "\n";
    }
  }
  out << "  blocks (" << blocks.size() << ", " << blocks_before_reduction
      << " before reduction):\n";
  for (const auto& [site, b] : blocks) {
    out << "    [" << b.name << "] " << block_kind_name(b.kind)
        << (b.merged ? " (merged)" : "") << "\n";
    for (const auto& s : b.dsod) {
      out << "      dsod: " << to_string(s) << "\n";
    }
    if (b.kind == BlockKind::kConditional && !b.merged && b.guard != nullptr) {
      out << "      nbtd: if (" << to_string(*b.guard) << ")\n";
      auto dir = [&](const CondDir& d, const char* label) {
        out << "        " << label << ": ";
        if (!d.observed) {
          out << "(never observed)";
        } else if (d.ends) {
          out << "(round ends)";
        } else {
          out << blocks.at(d.succ).name;
        }
        out << "\n";
      };
      dir(b.taken, "taken    ");
      dir(b.not_taken, "not-taken");
    } else if (b.has_succ) {
      out << "      next: " << blocks.at(b.succ).name << "\n";
    } else if (b.ends) {
      out << "      next: (round ends)\n";
    }
    if (!b.fp_targets.empty()) {
      out << "      indirect targets:";
      for (FuncAddr t : b.fp_targets) {
        auto it = program.functions().find(t);
        if (it != program.functions().end()) {
          out << " " << it->second;
        } else {
          out << " 0x" << std::hex << t << std::dec;
        }
      }
      out << "\n";
    }
    if (!b.cmd_dispatch.empty()) {
      for (const auto& [cmd, d] : b.cmd_dispatch) {
        out << "      cmd 0x" << std::hex << cmd << std::dec << " -> ";
        if (d.ends) {
          out << "(round ends)";
        } else {
          out << blocks.at(d.succ).name;
        }
        out << "\n";
      }
    }
    if (b.max_visits_per_round > 1) {
      out << "      max visits/round: " << b.max_visits_per_round << "\n";
    }
  }
  out << "  command access table (" << commands.size() << " commands):\n";
  for (const auto& [cmd, ci] : commands) {
    out << "    cmd 0x" << std::hex << cmd << std::dec << " ("
        << ci.observed << " obs): " << ci.access.size()
        << " accessible blocks\n";
  }
  if (!sync_locals.empty()) {
    out << "  sync points:";
    for (LocalId l : sync_locals) {
      out << " " << program.local_name(l);
    }
    out << "\n";
  }
  return out.str();
}

}  // namespace sedspec::spec
