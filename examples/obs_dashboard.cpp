// obs_dashboard — exercise the observability layer end-to-end and export
// every surface it has: a Prometheus text snapshot, a JSON metrics
// snapshot, and a Chrome trace-event file loadable in Perfetto
// (ui.perfetto.dev) or chrome://tracing.
//
// The run: deploy SEDSpec on the FDC (pipeline-phase spans land in the
// trace), drive benign traffic, then replay the paper's first CVE case
// study (CVE-2015-3456 "VENOM") through ExploitScenario::evaluate() — the
// per-strategy runs populate `checker_check_latency_ns` histograms labeled
// strategies="parameter"/"indirect"/"conditional"/"all", and the blocked
// exploit emits violation events.
//
// The binary then validates its own output by parsing the exported bytes
// back with obs::json_parse (the dashboard is also the smoke test — see
// tests/CMakeLists.txt): the metrics snapshot must contain populated
// per-strategy latency histograms with ordered percentiles, and the trace
// must contain pipeline phase begin/end pairs and at least one violation
// event carrying a strategy label. Exit code 0 only if every check holds.
//
// Usage: obs_dashboard [--metrics PATH] [--prom PATH] [--trace PATH]
//                      [--verbose]
//   defaults: obs_metrics.json, obs_metrics.prom, obs_dashboard.trace.json
//   --verbose: record per-access io_access / per-block traversal_step
//              events too (bigger trace, finer Perfetto timeline)
#include <cstdio>
#include <cstring>
#include <fstream>
#include <string>

#include "common/log.h"
#include "common/rng.h"
#include "guest/exploits.h"
#include "guest/workload.h"
#include "obs/json.h"
#include "obs/metrics.h"
#include "obs/trace.h"

using namespace sedspec;

namespace {

bool write_file(const std::string& path, const std::string& bytes) {
  std::ofstream out(path, std::ios::binary);
  out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
  if (!out) {
    std::fprintf(stderr, "obs_dashboard: cannot write %s\n", path.c_str());
    return false;
  }
  return true;
}

int g_failures = 0;

void check(bool ok, const std::string& what) {
  std::printf("  [%s] %s\n", ok ? "ok" : "FAIL", what.c_str());
  if (!ok) {
    ++g_failures;
  }
}

/// Finds the `checker_check_latency_ns` histogram entry (in the parsed
/// metrics snapshot) whose label string contains `strategies="<set>"`.
const obs::JsonValue* find_latency_hist(const obs::JsonValue& snapshot,
                                        const std::string& strategy_set) {
  const obs::JsonValue* hists = snapshot.find("histograms");
  if (hists == nullptr || !hists->is_array()) {
    return nullptr;
  }
  const std::string want = "strategies=\"" + strategy_set + "\"";
  for (const obs::JsonValue& h : hists->array) {
    const obs::JsonValue* name = h.find("name");
    const obs::JsonValue* labels = h.find("labels");
    if (name != nullptr && name->str == "checker_check_latency_ns" &&
        labels != nullptr && labels->str.find(want) != std::string::npos) {
      return &h;
    }
  }
  return nullptr;
}

double num(const obs::JsonValue& obj, const char* key) {
  const obs::JsonValue* v = obj.find(key);
  return v != nullptr && v->is_number() ? v->number : -1.0;
}

}  // namespace

int main(int argc, char** argv) {
  std::string metrics_path = "obs_metrics.json";
  std::string prom_path = "obs_metrics.prom";
  std::string trace_path = "obs_dashboard.trace.json";
  bool verbose = false;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto value = [&](const char* flag) -> const char* {
      if (arg == flag && i + 1 < argc) {
        return argv[++i];
      }
      const std::string eq = std::string(flag) + "=";
      if (arg.rfind(eq, 0) == 0) {
        return argv[i] + eq.size();
      }
      return nullptr;
    };
    if (const char* v = value("--metrics")) {
      metrics_path = v;
    } else if (const char* v = value("--prom")) {
      prom_path = v;
    } else if (const char* v = value("--trace")) {
      trace_path = v;
    } else if (arg == "--verbose") {
      verbose = true;
    } else {
      std::fprintf(stderr,
                   "usage: obs_dashboard [--metrics PATH] [--prom PATH] "
                   "[--trace PATH] [--verbose]\n");
      return 2;
    }
  }

  set_log_level(LogLevel::kError);
  obs::set_timing_enabled(true);
  static obs::EventTracer tracer(1 << 16);
  tracer.set_detail(verbose ? obs::EventTracer::Detail::kVerbose
                            : obs::EventTracer::Detail::kNormal);
  obs::set_tracer(&tracer);

  // Phase spans: the full pipeline (trace pass, ITC-CFG, dataflow, observe
  // pass, ES-CFG build) runs under PhaseScope instrumentation.
  std::printf("deploying SEDSpec on fdc (pipeline phases traced)...\n");
  auto wl = guest::make_workload("fdc");
  wl->build_and_deploy();

  // Benign traffic through the checked bus path.
  Rng rng(2024);
  for (int i = 0; i < 50; ++i) {
    wl->common_operation(guest::InteractionMode::kRandom, rng);
  }
  wl->checker()->publish_metrics(obs::metrics());

  // CVE replay: scenario [0] is CVE-2015-3456 (VENOM, fdc). evaluate()
  // runs it unprotected, once per single strategy, and with all strategies
  // — populating every per-strategy latency label and emitting violation
  // events for the runs that detect it.
  const auto& scenario = guest::exploit_scenarios().front();
  std::printf("replaying %s against %s...\n", scenario.info().cve.c_str(),
              scenario.info().device.c_str());
  const auto matrix = scenario.evaluate();
  std::printf("  detected=%d blocked_damage=%d (param=%d indirect=%d "
              "conditional=%d)\n",
              matrix.detected ? 1 : 0, matrix.protected_compromised ? 0 : 1,
              matrix.parameter ? 1 : 0, matrix.indirect ? 1 : 0,
              matrix.conditional ? 1 : 0);

  // Export all three surfaces.
  const std::string metrics_json = obs::metrics().to_json();
  const std::string prom = obs::metrics().to_prometheus();
  const std::string trace_json = tracer.to_chrome_json();
  obs::set_tracer(nullptr);
  if (!write_file(metrics_path, metrics_json) ||
      !write_file(prom_path, prom) || !write_file(trace_path, trace_json)) {
    return 1;
  }
  std::printf("\nwrote %s (%zu bytes), %s (%zu bytes), %s (%zu events, %llu "
              "dropped)\n",
              metrics_path.c_str(), metrics_json.size(), prom_path.c_str(),
              prom.size(), trace_path.c_str(), tracer.size(),
              static_cast<unsigned long long>(tracer.dropped()));

  // ---- Self-check: parse the exported bytes back and assert structure.
  std::printf("\nvalidating exports (parse-back)...\n");
  obs::JsonValue snapshot;
  obs::JsonValue trace;
  try {
    snapshot = obs::json_parse(metrics_json);
    trace = obs::json_parse(trace_json);
    check(true, "metrics + trace JSON parse cleanly");
  } catch (const DecodeError& e) {
    check(false, std::string("JSON parse: ") + e.what());
    return 1;
  }

  // Per-strategy check-latency percentiles, printed and validated.
  std::printf("\n  checker check-latency percentiles (ns):\n");
  std::printf("  %-14s %10s %10s %10s %10s %10s\n", "strategies", "count",
              "p50", "p90", "p99", "max");
  for (const char* set : {"parameter", "indirect", "conditional", "all"}) {
    const obs::JsonValue* h = find_latency_hist(snapshot, set);
    if (h == nullptr) {
      check(false, std::string("latency histogram for strategies=") + set);
      continue;
    }
    const double count = num(*h, "count");
    const double p50 = num(*h, "p50");
    const double p90 = num(*h, "p90");
    const double p99 = num(*h, "p99");
    std::printf("  %-14s %10.0f %10.0f %10.0f %10.0f %10.0f\n", set, count,
                p50, p90, p99, num(*h, "max"));
    check(count > 0, std::string("strategies=") + set + " has samples");
    check(p50 <= p90 && p90 <= p99,
          std::string("strategies=") + set + " percentiles ordered");
  }

  // Trace structure: phase spans + a violation instant with a strategy.
  const obs::JsonValue* events = trace.find("traceEvents");
  check(events != nullptr && events->is_array(), "trace has traceEvents[]");
  size_t begins = 0, ends = 0, violations = 0;
  bool violation_has_strategy = false;
  if (events != nullptr && events->is_array()) {
    for (const obs::JsonValue& e : events->array) {
      const obs::JsonValue* ph = e.find("ph");
      const obs::JsonValue* name = e.find("name");
      if (ph == nullptr || name == nullptr) {
        continue;
      }
      begins += ph->str == "B" ? 1 : 0;
      ends += ph->str == "E" ? 1 : 0;
      if (name->str == "violation") {
        ++violations;
        const obs::JsonValue* args = e.find("args");
        const obs::JsonValue* strategy =
            args != nullptr ? args->find("strategy") : nullptr;
        violation_has_strategy =
            violation_has_strategy ||
            (strategy != nullptr && !strategy->str.empty());
      }
    }
  }
  std::printf("\n  trace events: %zu phase-begin, %zu phase-end, %zu "
              "violations\n",
              begins, ends, violations);
  check(begins > 0 && begins == ends, "pipeline phase B/E events paired");
  check(violations > 0, "exploit replay produced violation events");
  check(violation_has_strategy, "violation events carry a strategy label");

  // Prometheus exposition sanity (text format, no parser needed).
  check(prom.find("# TYPE sedspec_checker_check_latency_ns summary") !=
            std::string::npos,
        "prometheus exposition has latency summary");
  check(prom.find("sedspec_bus_accesses_total") != std::string::npos,
        "prometheus exposition has bus counters");

  if (g_failures != 0) {
    std::printf("\n%d check(s) FAILED\n", g_failures);
    return 1;
  }
  std::printf("\nall checks passed — open %s in ui.perfetto.dev to inspect "
              "the timeline\n",
              trace_path.c_str());
  return 0;
}
