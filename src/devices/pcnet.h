// PCNet — AMD Am79C970A PCI network adapter (after QEMU's hw/net/pcnet.c).
//
// PMIO register block at 0x300: RDP (+0x10, CSR data), RAP (+0x12, register
// address), RESET (+0x14), BDP (+0x16, BCR data). CSRs are selected through
// RAP. The device DMAs an init block (ring base addresses) on CSR0.INIT,
// and transmits by walking the TX descriptor ring on CSR0.TDMD, appending
// chained descriptor payloads into the 4096-byte PCNetState.buffer at
// xmit_pos. With CSR15.LOOP set, completed frames are looped back into the
// receive path, which scans the RX descriptor ring (ring length derived
// from CSR76 as 0x10000 - csr76) and DMAs the frame to the guest.
//
// Vulnerabilities (all in the loopback/receive path, as in QEMU 2.4-2.6):
//  - CVE-2015-7504: when FCS appending is enabled (CSR15.DXMTFCS clear),
//    the loopback path writes a 4-byte CRC at buffer[frame_len] through a
//    temporary pointer. A 4096-byte frame puts the CRC exactly past the
//    buffer, overwriting the adjacent irq_fn function pointer. The index is
//    a non-state temporary, so SEDSpec's parameter check is blind to it —
//    the indirect-jump check catches the corrupted pointer at the next
//    interrupt call site. Patched: bound check before the CRC store.
//  - CVE-2015-7512: the TX append loop does not bound xmit_pos + len, so
//    chained descriptors can push the copy past the 4096-byte buffer.
//    xmit_pos is a device-state index parameter, so the parameter check
//    catches the overflow; the corruption also reaches irq_fn (indirect
//    check). Patched: bound check before the append.
//  - CVE-2016-7909: the receive descriptor scan bounds its search with the
//    ring length 0x10000 - csr76; a guest writing CSR76 = 0 makes that
//    65536, and the scan spins over the whole bogus ring (denial of
//    service). Caught by the conditional-jump check's trained per-round
//    visit bound. Patched: ring length clamped to the ring maximum.
#pragma once

#include <cstdint>
#include <memory>
#include <span>
#include <vector>

#include "program/program.h"
#include "vdev/device.h"
#include "vdev/dma.h"

namespace sedspec::devices {

class PcnetDevice final : public sedspec::Device {
 public:
  struct Vulns {
    bool cve_2015_7504 = false;  // unchecked loopback CRC store
    bool cve_2015_7512 = false;  // unchecked TX append
    bool cve_2016_7909 = false;  // unclamped RX ring length
  };

  static constexpr uint64_t kBasePort = 0x300;
  static constexpr uint64_t kPortSpan = 0x20;
  static constexpr uint64_t kRegRdp = 0x10;
  static constexpr uint64_t kRegRap = 0x12;
  static constexpr uint64_t kRegReset = 0x14;
  static constexpr uint64_t kRegBdp = 0x16;

  static constexpr uint32_t kBufferSize = 4096;
  static constexpr uint32_t kDescSize = 16;
  static constexpr uint32_t kMaxRing = 128;

  // CSR0 bits.
  static constexpr uint16_t kCsr0Init = 0x0001;
  static constexpr uint16_t kCsr0Strt = 0x0002;
  static constexpr uint16_t kCsr0Stop = 0x0004;
  static constexpr uint16_t kCsr0Tdmd = 0x0008;
  static constexpr uint16_t kCsr0Txon = 0x0010;
  static constexpr uint16_t kCsr0Rxon = 0x0020;
  static constexpr uint16_t kCsr0Iena = 0x0040;
  static constexpr uint16_t kCsr0Idon = 0x0100;
  static constexpr uint16_t kCsr0Tint = 0x0200;
  static constexpr uint16_t kCsr0Rint = 0x0400;
  static constexpr uint16_t kCsr0Miss = 0x1000;

  // CSR15 (mode) bits.
  static constexpr uint16_t kModeLoop = 0x0004;
  static constexpr uint16_t kModeDxmtfcs = 0x0008;  // set = no FCS append

  // Descriptor flag bits (simplified TMD/RMD).
  static constexpr uint32_t kDescOwn = 0x1;
  static constexpr uint32_t kDescStp = 0x2;
  static constexpr uint32_t kDescEnp = 0x4;

  PcnetDevice(sedspec::GuestMemory* mem, Vulns vulns);
  explicit PcnetDevice(sedspec::GuestMemory* mem)
      : PcnetDevice(mem, Vulns{}) {}
  ~PcnetDevice() override;

  uint64_t io_read(const sedspec::IoAccess& io) override;
  void io_write(const sedspec::IoAccess& io) override;
  std::optional<uint64_t> resolve_sync(
      sedspec::LocalId local, const sedspec::IoAccess& io,
      const sedspec::StateAccess& view) override;
  sedspec::DmaEngine* dma_engine() override { return &dma_; }

  /// Host-side frame delivery (the NIC's wire side). Runs the receive path
  /// in a device-internal round; not guest I/O, so it is not checked.
  /// Returns true if the frame was delivered to a guest RX buffer.
  bool receive_frame(std::span<const uint8_t> frame);

  /// Frames transmitted to the wire (non-loopback), for tests/benchmarks.
  [[nodiscard]] const std::vector<std::vector<uint8_t>>& tx_log() const {
    return tx_log_;
  }
  void clear_tx_log() { tx_log_.clear(); }

  struct Blueprint;
  [[nodiscard]] const Blueprint& blueprint() const { return *bp_; }

 protected:
  void reset_device() override;

 private:
  PcnetDevice(std::unique_ptr<Blueprint> bp, sedspec::GuestMemory* mem,
              Vulns vulns);

  struct RxSites;  // one instance for loopback, one for the wire side

  void csr_write(uint16_t rap, const sedspec::IoAccess& io);
  [[nodiscard]] uint16_t csr_read_value(uint16_t rap) const;
  void do_transmit();
  /// Scans the RX ring and delivers buffer[0..len) to the guest.
  void rx_deliver(const RxSites& sites, uint32_t len);
  void append_fcs();

  // Native guest-memory helpers (also used by resolve_sync; all read-only
  // with respect to device state).
  [[nodiscard]] uint64_t tx_desc_addr(const sedspec::StateAccess& view) const;
  [[nodiscard]] uint64_t rx_desc_addr(const sedspec::StateAccess& view) const;

  std::unique_ptr<Blueprint> bp_;
  Vulns vulns_;
  sedspec::DmaEngine dma_;
  std::vector<std::vector<uint8_t>> tx_log_;
};

struct PcnetDevice::Blueprint {
  std::unique_ptr<sedspec::DeviceProgram> program;

  // PCNetState fields.
  sedspec::ParamId rap, csr0, csr1, csr2, csr3, csr4, csr15, csr76, csr78;
  sedspec::ParamId rdra, tdra, rcvrc, xmtrc, rx_scan;
  sedspec::ParamId xmit_pos, buffer, irq_fn;

  // Sync locals (guest-memory-derived).
  sedspec::LocalId l_init_rdra, l_init_tdra;
  sedspec::LocalId l_tx_own, l_tx_len, l_tx_enp;
  sedspec::LocalId l_fcs_pos;
  sedspec::LocalId l_rx_own;   // loopback scan
  sedspec::LocalId l_erx_own;  // wire-side scan
  sedspec::LocalId l_ext_len;

  // Register access sites.
  sedspec::SiteId s_rap_set, s_rap_read, s_reset, s_csr_read;
  sedspec::SiteId s_bdp_write, s_bdp_read;

  // CSR write dispatch chain.
  sedspec::SiteId s_w_is0, s_w_is1, s_w_is2, s_w_is3, s_w_is4, s_w_is15,
      s_w_is76, s_w_is78;
  sedspec::SiteId s_csr1_set, s_csr2_set, s_csr3_set, s_csr4_set,
      s_csr15_set, s_csr76_set, s_csr78_set, s_csr_other_w;

  // CSR0 control path.
  sedspec::SiteId s_csr0_ack, s_csr0_stopq, s_csr0_stop, s_csr0_initq, s_init,
      s_irq_init, s_csr0_strtq, s_strt, s_csr0_tdmdq;

  // Transmit path.
  sedspec::SiteId s_tx_start, s_tx_desc, s_tx_boundq, s_tx_trunc, s_tx_append,
      s_tx_enpq, s_tx_adv, s_tx_wrapq, s_tx_wrap_do, s_tx_done;
  sedspec::SiteId s_tx_loopq, s_fcsq, s_fcs_boundq, s_fcs, s_fcs_skip;
  sedspec::SiteId s_tx_sent, s_irq_tx;

  // Loopback receive chain.
  sedspec::SiteId s_rx_begin, s_rx_clampq, s_rx_clamp, s_rx_scanq, s_rx_ownq,
      s_rx_deliver, s_rxd_adv, s_rxd_wrapq, s_rxd_wrap, s_rx_adv, s_rx_wrapq,
      s_rx_wrap_do, s_rx_drop, s_lb_done;

  // Wire-side receive chain.
  sedspec::SiteId s_erx_copy, s_erx_begin, s_erx_clampq, s_erx_clamp,
      s_erx_scanq, s_erx_ownq, s_erx_deliver, s_erxd_adv, s_erxd_wrapq,
      s_erxd_wrap, s_erx_adv, s_erx_wrapq, s_erx_wrap_do, s_erx_drop,
      s_erx_done, s_irq_rx;

  sedspec::FuncAddr f_irq;
};

}  // namespace sedspec::devices
