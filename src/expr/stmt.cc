#include "expr/stmt.h"

#include <sstream>

namespace sedspec {

std::string to_string(const Stmt& s) {
  std::ostringstream out;
  switch (s.kind) {
    case StmtKind::kAssignParam:
      out << "p" << s.param << " = " << to_string(*s.value);
      break;
    case StmtKind::kAssignLocal:
      out << "local" << s.local << " = " << to_string(*s.value);
      break;
    case StmtKind::kBufStore:
      out << "p" << s.param << "[" << to_string(*s.index)
          << "] = " << to_string(*s.value);
      break;
    case StmtKind::kBufFill:
      out << "p" << s.param << "[" << to_string(*s.index) << " .. +"
          << to_string(*s.count) << ") = <data>";
      break;
  }
  if (!s.note.empty()) {
    out << "  // " << s.note;
  }
  return out.str();
}

namespace sb {

Stmt assign(ParamId field, ExprRef value, std::string note) {
  Stmt s;
  s.kind = StmtKind::kAssignParam;
  s.param = field;
  s.value = std::move(value);
  s.note = std::move(note);
  return s;
}

Stmt assign_local(LocalId local, ExprRef value, std::string note) {
  Stmt s;
  s.kind = StmtKind::kAssignLocal;
  s.local = local;
  s.value = std::move(value);
  s.note = std::move(note);
  return s;
}

Stmt buf_store(ParamId buffer, ExprRef index, ExprRef value,
               std::string note) {
  Stmt s;
  s.kind = StmtKind::kBufStore;
  s.param = buffer;
  s.index = std::move(index);
  s.value = std::move(value);
  s.note = std::move(note);
  return s;
}

Stmt buf_fill(ParamId buffer, ExprRef index, ExprRef count, std::string note) {
  Stmt s;
  s.kind = StmtKind::kBufFill;
  s.param = buffer;
  s.index = std::move(index);
  s.count = std::move(count);
  s.note = std::move(note);
  return s;
}

}  // namespace sb

}  // namespace sedspec
