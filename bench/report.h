// Shared formatting helpers for the paper-reproduction benchmark binaries.
#pragma once

#include <cstdio>
#include <map>
#include <string>

namespace bench_report {

inline void title(const std::string& text) {
  std::printf("\n=== %s ===\n\n", text.c_str());
}

inline void rule(int width = 78) {
  for (int i = 0; i < width; ++i) {
    std::putchar('-');
  }
  std::putchar('\n');
}

inline const char* mark(bool v) { return v ? "yes" : "-"; }

inline std::string human_size(size_t bytes) {
  char buf[32];
  if (bytes >= (1u << 20)) {
    std::snprintf(buf, sizeof(buf), "%zuM", bytes >> 20);
  } else if (bytes >= (1u << 10)) {
    std::snprintf(buf, sizeof(buf), "%zuK", bytes >> 10);
  } else {
    std::snprintf(buf, sizeof(buf), "%zu", bytes);
  }
  return buf;
}

/// Machine-readable sidecar for a benchmark binary: a flat metric-name ->
/// value map written as `BENCH_<bench>.json` next to the binary's cwd so
/// the perf trajectory can be tracked across PRs. Stdout formatting is
/// untouched — every bench prints its human tables exactly as before and
/// additionally `put()`s the numbers it prints.
class MetricSink {
 public:
  explicit MetricSink(std::string bench_name)
      : bench_(std::move(bench_name)) {}

  void put(const std::string& name, double value) { metrics_[name] = value; }

  /// Writes `BENCH_<bench>.json` as {"bench": "...", "metrics": {...}}.
  /// Returns false (after a warning on stderr) if the file can't be
  /// opened; benchmarks still exit 0 in that case — the sidecar is an
  /// observability aid, not a correctness gate.
  bool write_json() const {
    const std::string path = "BENCH_" + bench_ + ".json";
    std::FILE* f = std::fopen(path.c_str(), "w");
    if (f == nullptr) {
      std::fprintf(stderr, "bench_report: cannot write %s\n", path.c_str());
      return false;
    }
    std::fprintf(f, "{\n  \"bench\": \"%s\",\n  \"metrics\": {",
                 escape(bench_).c_str());
    bool first = true;
    for (const auto& [name, value] : metrics_) {
      std::fprintf(f, "%s\n    \"%s\": %.17g", first ? "" : ",",
                   escape(name).c_str(), value);
      first = false;
    }
    std::fprintf(f, "\n  }\n}\n");
    std::fclose(f);
    // stderr, not stdout: the human-readable tables on stdout must stay
    // byte-identical to what the bench printed before the sidecar existed.
    std::fprintf(stderr, "[bench_report] wrote %s (%zu metrics)\n",
                 path.c_str(), metrics_.size());
    return true;
  }

  [[nodiscard]] size_t size() const { return metrics_.size(); }

 private:
  static std::string escape(const std::string& s) {
    std::string out;
    out.reserve(s.size());
    for (char c : s) {
      if (c == '"' || c == '\\') {
        out.push_back('\\');
      }
      out.push_back(c);
    }
    return out;
  }

  std::string bench_;
  std::map<std::string, double> metrics_;  // sorted => deterministic output
};

}  // namespace bench_report
