// Unit tests for the IPT-style trace substrate: packet encode/decode
// round-trips (including short-TNT bit packing), address-range and
// kernel-space filtering, and ITC-CFG construction.
#include <gtest/gtest.h>

#include "cfg/itc_cfg.h"
#include "common/rng.h"
#include "trace/encoder.h"
#include "trace/packets.h"

namespace sedspec {
namespace {

using trace::EventKind;
using trace::PacketEncoder;
using trace::TraceEvent;
using trace::TraceFilter;

TEST(TracePackets, SimpleRoundTrip) {
  PacketEncoder enc;
  enc.pge(0x1000);
  enc.tip(0x1010);
  enc.tnt(true);
  enc.tip(0x1020);
  enc.tnt(false);
  enc.pgd();
  const auto events = trace::decode(enc.finish());
  const std::vector<TraceEvent> expected = {
      {EventKind::kPge, 0x1000, false}, {EventKind::kTip, 0x1010, false},
      {EventKind::kTnt, 0, true},       {EventKind::kTip, 0x1020, false},
      {EventKind::kTnt, 0, false},      {EventKind::kPgd, 0, false},
  };
  EXPECT_EQ(events, expected);
}

TEST(TracePackets, TntBitsPackSixPerByte) {
  PacketEncoder enc;
  enc.pge(0);
  for (int i = 0; i < 6; ++i) {
    enc.tnt(i % 2 == 0);
  }
  enc.pgd();
  const auto bytes = enc.finish();
  // PGE (1+8) + one packed TNT (1+1) + PGD (1).
  EXPECT_EQ(bytes.size(), 9u + 2u + 1u);
  const auto events = trace::decode(bytes);
  int tnt = 0;
  for (const auto& e : events) {
    if (e.kind == EventKind::kTnt) {
      EXPECT_EQ(e.taken, tnt % 2 == 0);
      ++tnt;
    }
  }
  EXPECT_EQ(tnt, 6);
}

TEST(TracePackets, AddressRangeFilterDropsForeignCode) {
  TraceFilter filter;
  filter.range_lo = 0x1000;
  filter.range_hi = 0x2000;
  PacketEncoder enc(filter);
  enc.pge(0x1000);
  enc.tip(0x1800);            // in range
  enc.tip(0x7fff0000);        // shared library: dropped
  enc.tip(0x1ff0);            // in range
  enc.pgd();
  const auto events = trace::decode(enc.finish());
  int tips = 0;
  for (const auto& e : events) {
    if (e.kind == EventKind::kTip) {
      EXPECT_GE(e.addr, 0x1000u);
      EXPECT_LT(e.addr, 0x2000u);
      ++tips;
    }
  }
  EXPECT_EQ(tips, 2);
  EXPECT_EQ(enc.dropped_by_filter(), 1u);
}

TEST(TracePackets, KernelSpaceDisabled) {
  TraceFilter filter;  // trace_kernel defaults to false
  PacketEncoder enc(filter);
  enc.pge(0x1000);
  enc.tip(TraceFilter::kKernelBase + 0x1234);
  enc.pgd();
  EXPECT_EQ(enc.dropped_by_filter(), 1u);
}

TEST(TracePackets, MalformedInputThrows) {
  std::vector<uint8_t> junk = {0x99};
  EXPECT_THROW((void)trace::decode(junk), sedspec::DecodeError);
  std::vector<uint8_t> truncated = {0x03, 0x01};  // TIP missing bytes
  EXPECT_THROW((void)trace::decode(truncated), sedspec::DecodeError);
}

// Property: any interleaving of windows, tips, and branch bits survives the
// encode/decode round trip exactly.
class TraceRoundTrip : public ::testing::TestWithParam<uint64_t> {};

INSTANTIATE_TEST_SUITE_P(Seeds, TraceRoundTrip,
                         ::testing::Values(1, 2, 3, 5, 8, 13, 21, 34));

TEST_P(TraceRoundTrip, RandomStreamsRoundTrip) {
  Rng rng(GetParam());
  PacketEncoder enc;
  std::vector<TraceEvent> expected;
  for (int round = 0; round < 50; ++round) {
    const uint64_t base = 0x1000 + rng.below(512) * 16;
    enc.pge(base);
    expected.push_back({EventKind::kPge, base, false});
    const int n = static_cast<int>(rng.range(1, 20));
    for (int i = 0; i < n; ++i) {
      if (rng.chance(0.4)) {
        const bool taken = rng.chance(0.5);
        enc.tnt(taken);
        expected.push_back({EventKind::kTnt, 0, taken});
      } else {
        const uint64_t addr = 0x1000 + rng.below(4096);
        enc.tip(addr);
        expected.push_back({EventKind::kTip, addr, false});
      }
    }
    enc.pgd();
    expected.push_back({EventKind::kPgd, 0, false});
  }
  EXPECT_EQ(trace::decode(enc.finish()), expected);
}

TEST(ItcCfg, BuildsLabeledEdges) {
  // One window: A -(seq)-> B -(taken)-> C ; second window: B -(nottaken)-> D
  std::vector<TraceEvent> events = {
      {EventKind::kPge, 0, false},    {EventKind::kTip, 0xa, false},
      {EventKind::kTip, 0xb, false},  {EventKind::kTnt, 0, true},
      {EventKind::kTip, 0xc, false},  {EventKind::kPgd, 0, false},
      {EventKind::kPge, 0, false},    {EventKind::kTip, 0xb, false},
      {EventKind::kTnt, 0, false},    {EventKind::kTip, 0xd, false},
      {EventKind::kPgd, 0, false},
  };
  cfg::ItcCfgBuilder builder;
  builder.feed_all(events);
  const cfg::ItcCfg graph = builder.take();
  EXPECT_EQ(graph.window_count(), 2u);
  ASSERT_NE(graph.node(0xa), nullptr);
  EXPECT_EQ(graph.node(0xa)->succ_seq.at(0xb), 1u);
  EXPECT_EQ(graph.node(0xb)->succ_taken.at(0xc), 1u);
  EXPECT_EQ(graph.node(0xb)->succ_not_taken.at(0xd), 1u);
  EXPECT_EQ(graph.node(0xb)->visits, 2u);
  EXPECT_TRUE(graph.window_heads().contains(0xa));
  EXPECT_TRUE(graph.window_heads().contains(0xb));
  EXPECT_EQ(graph.edge_count(), 3u);
}

TEST(ItcCfg, WindowEndsTracked) {
  std::vector<TraceEvent> events = {
      {EventKind::kPge, 0, false},
      {EventKind::kTip, 0xa, false},
      {EventKind::kPgd, 0, false},
  };
  cfg::ItcCfgBuilder builder;
  builder.feed_all(events);
  const cfg::ItcCfg graph = builder.take();
  EXPECT_EQ(graph.node(0xa)->window_ends, 1u);
}

}  // namespace
}  // namespace sedspec
