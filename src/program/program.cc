#include "program/program.h"

#include "common/assert.h"

namespace sedspec {

std::string block_kind_name(BlockKind k) {
  switch (k) {
    case BlockKind::kPlain:
      return "plain";
    case BlockKind::kConditional:
      return "conditional";
    case BlockKind::kIndirect:
      return "indirect";
    case BlockKind::kCmdDecision:
      return "cmd-decision";
    case BlockKind::kCmdEnd:
      return "cmd-end";
  }
  return "?";
}

DeviceProgram::DeviceProgram(std::string device_name, StateLayout layout,
                             FuncAddr code_base)
    : name_(std::move(device_name)),
      layout_(std::move(layout)),
      code_base_(code_base),
      next_addr_(code_base) {}

SiteId DeviceProgram::add_site(SiteDesc desc) {
  SEDSPEC_REQUIRE(sites_.size() < kInvalidSite);
  desc.id = static_cast<SiteId>(sites_.size());
  desc.addr = next_addr_;
  next_addr_ += 16;
  sites_.push_back(std::move(desc));
  return sites_.back().id;
}

SiteId DeviceProgram::add_plain(std::string name, StmtList dsod) {
  SiteDesc d;
  d.name = std::move(name);
  d.kind = BlockKind::kPlain;
  d.dsod = std::move(dsod);
  return add_site(std::move(d));
}

SiteId DeviceProgram::add_conditional(std::string name, ExprRef guard,
                                      StmtList dsod) {
  SEDSPEC_REQUIRE(guard != nullptr);
  SiteDesc d;
  d.name = std::move(name);
  d.kind = BlockKind::kConditional;
  d.guard = std::move(guard);
  d.dsod = std::move(dsod);
  return add_site(std::move(d));
}

SiteId DeviceProgram::add_indirect(std::string name, ParamId fp_param,
                                   StmtList dsod) {
  SEDSPEC_REQUIRE(layout_.field(fp_param).kind == FieldKind::kFuncPtr);
  SiteDesc d;
  d.name = std::move(name);
  d.kind = BlockKind::kIndirect;
  d.fp_param = fp_param;
  d.dsod = std::move(dsod);
  return add_site(std::move(d));
}

SiteId DeviceProgram::add_cmd_decision(std::string name, ExprRef cmd_expr,
                                       StmtList dsod) {
  SEDSPEC_REQUIRE(cmd_expr != nullptr);
  SiteDesc d;
  d.name = std::move(name);
  d.kind = BlockKind::kCmdDecision;
  d.cmd_expr = std::move(cmd_expr);
  d.dsod = std::move(dsod);
  return add_site(std::move(d));
}

SiteId DeviceProgram::add_cmd_end(std::string name, StmtList dsod) {
  SiteDesc d;
  d.name = std::move(name);
  d.kind = BlockKind::kCmdEnd;
  d.dsod = std::move(dsod);
  return add_site(std::move(d));
}

FuncAddr DeviceProgram::add_function(std::string name) {
  const FuncAddr addr = next_addr_;
  next_addr_ += 16;
  functions_.emplace(addr, std::move(name));
  return addr;
}

LocalId DeviceProgram::add_local(std::string name) {
  SEDSPEC_REQUIRE(local_names_.size() < 256);
  local_names_.push_back(std::move(name));
  return static_cast<LocalId>(local_names_.size() - 1);
}

const SiteDesc& DeviceProgram::site(SiteId id) const {
  SEDSPEC_REQUIRE(id < sites_.size());
  return sites_[id];
}

std::optional<SiteId> DeviceProgram::site_by_addr(FuncAddr addr) const {
  if (addr < code_base_ || addr >= next_addr_) {
    return std::nullopt;
  }
  // Sites and functions share the address range; linear scan (site counts
  // are small and this is an offline-analysis path).
  for (const SiteDesc& s : sites_) {
    if (s.addr == addr) {
      return s.id;
    }
  }
  return std::nullopt;
}

std::optional<SiteId> DeviceProgram::site_by_name(
    const std::string& name) const {
  for (const SiteDesc& s : sites_) {
    if (s.name == name) {
      return s.id;
    }
  }
  return std::nullopt;
}

const std::string& DeviceProgram::local_name(LocalId id) const {
  SEDSPEC_REQUIRE(id < local_names_.size());
  return local_names_[id];
}

}  // namespace sedspec
