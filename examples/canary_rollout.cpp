// canary_rollout — quick-start for a canaried spec redeploy.
//
// Walks the fleet control plane end to end on a 4-shard FDC fleet:
//
//   1. A retrained candidate is staged and promoted through the full
//      state machine (Staging → Shadow 50% → Shadow 100% → Promoting →
//      Active), printing every persisted state transition and window
//      verdict along the way.
//   2. An over-tight candidate (trained on a sliver of the benign mix) is
//      rolled out the same way: the shadow stage sees its would-be false
//      positives and auto-rolls back — the baseline spec never stops
//      enforcing and no benign I/O was ever blocked.
//   3. One tenant-level policy write ("new CVE: enforce fdc everywhere")
//      hardens an opted-out shard mid-run via the tighten-only policy
//      tree.
//
// Usage: canary_rollout
#include <cstdio>
#include <vector>

#include "common/log.h"
#include "control/control_plane.h"
#include "guest/workload.h"
#include "sedspec/pipeline.h"
#include "spec/serial.h"

using namespace sedspec;

namespace {

spec::EsCfg train_spec(int training_ops) {
  auto w = guest::make_workload("fdc");
  if (training_ops <= 0) {
    return pipeline::build_spec(w->device(), [&] { w->training(); });
  }
  Rng rng(99);
  return pipeline::build_spec(w->device(), [&] {
    for (int i = 0; i < training_ops; ++i) {
      w->common_operation(guest::InteractionMode::kSequential, rng);
    }
  });
}

std::vector<enforce::ShardSpec> fleet(size_t n) {
  std::vector<enforce::ShardSpec> shards(n);
  for (size_t i = 0; i < n; ++i) {
    shards[i].device = "fdc";
    shards[i].seed = 400 + i;
  }
  return shards;
}

void print_outcome(const control::ControlPlane& plane,
                   const control::RolloutOutcome& out) {
  for (const control::WindowRecord& w : out.windows) {
    std::printf("  window %s stage=%u attempt=%u: shadow_shards=%llu "
                "would_block=%llu verdict=%s\n",
                control::rollout_state_name(w.state).c_str(), w.stage,
                w.attempt,
                static_cast<unsigned long long>(w.observation.shadow_shards),
                static_cast<unsigned long long>(w.observation.would_block),
                w.decision.verdict == control::StageVerdict::kPromote
                    ? "promote"
                    : w.decision.verdict == control::StageVerdict::kRetry
                          ? "retry"
                          : "rollback");
  }
  std::printf("  journal:");
  for (const auto& bytes : plane.journal()) {
    control::RolloutRecord rec;
    if (control::RolloutRecord::load(bytes, rec).ok()) {
      std::printf(" %s", control::rollout_state_name(rec.state).c_str());
    }
  }
  std::printf("\n  terminal: %s — %s\n",
              control::rollout_state_name(out.record.state).c_str(),
              out.record.reason.c_str());
}

}  // namespace

int main() {
  set_log_level(LogLevel::kError);

  spec::SpecStore active;
  active.publish(train_spec(0));
  std::printf("baseline fdc spec published (v%llu)\n\n",
              static_cast<unsigned long long>(active.version_of("fdc")));

  control::RolloutConfig cfg;
  cfg.stage_fractions = {0.5, 1.0};
  cfg.observe_ops = 24;

  // --- 1. A good candidate promotes. -----------------------------------
  std::printf("== rollout 1: retrained candidate ==\n");
  control::ControlPlane plane(&active);
  plane.stage_candidate(train_spec(0));
  const auto good = plane.run_rollout("fdc", fleet(4), cfg);
  print_outcome(plane, good);
  std::printf("  active store now v%llu\n\n",
              static_cast<unsigned long long>(active.version_of("fdc")));

  // --- 2. An over-tight candidate rolls back from shadow. --------------
  std::printf("== rollout 2: over-tight candidate ==\n");
  control::ControlPlane plane2(&active);
  plane2.stage_candidate(train_spec(2));  // trained on 2 ops: too tight
  const uint64_t before = active.version_of("fdc");
  const auto bad = plane2.run_rollout("fdc", fleet(4), cfg);
  print_outcome(plane2, bad);
  std::printf("  active store still v%llu (baseline kept enforcing)\n\n",
              static_cast<unsigned long long>(active.version_of("fdc")));

  // --- 3. One tenant policy write hardens an opted-out shard. ----------
  std::printf("== policy: enforce fdc everywhere in one write ==\n");
  control::PolicyTree tree;
  enforce::ServiceConfig svc;
  svc.policy = &tree;
  svc.spec_poll_ops = 8;
  auto shards = fleet(2);
  shards[1].unprotected = true;  // this shard opted out of enforcement
  shards[1].ops = 400;
  shards[1].op_hook = [&tree](uint64_t op) {
    if (op == 100) {
      control::Policy p;
      p.per_device["fdc"].enforce = true;
      tree.tighten_tenant(p);  // the one write
    }
  };
  enforce::EnforcementService service(&active, svc);
  const enforce::RunReport report = service.run(shards);
  std::printf("  opted-out shard: ended_protected=%d policy_redeploys=%llu "
              "checked_rounds=%llu\n",
              report.shards[1].ended_protected ? 1 : 0,
              static_cast<unsigned long long>(
                  report.shards[1].policy_redeploys),
              static_cast<unsigned long long>(report.shards[1].stats.rounds));

  const bool ok = good.promoted() &&
                  bad.record.state == control::RolloutState::kRolledBack &&
                  active.version_of("fdc") == before &&
                  report.shards[1].ended_protected;
  std::printf("\n%s\n", ok ? "canary_rollout PASSED" : "canary_rollout FAILED");
  return ok ? 0 : 1;
}
