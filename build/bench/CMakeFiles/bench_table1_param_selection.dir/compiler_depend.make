# Empty compiler generated dependencies file for bench_table1_param_selection.
# This may be replaced when dependencies are built.
