// Execution-specification diffing.
//
// Companion to spec::merge: shows what one trained specification covers
// that another does not, in terms of trained edges (entry dispatches,
// branch directions, successors, command dispatches, indirect targets).
// Useful for auditing a merge (what did the test team's corpus add?) and
// for regression review when a device's training mix changes.
#pragma once

#include <set>
#include <string>

#include "spec/es_cfg.h"

namespace sedspec::spec {

struct SpecDiff {
  std::set<std::string> only_a;  // edges trained in a but not b
  std::set<std::string> only_b;  // edges trained in b but not a
  size_t common = 0;

  [[nodiscard]] bool identical() const {
    return only_a.empty() && only_b.empty();
  }
};

[[nodiscard]] SpecDiff diff(const EsCfg& a, const EsCfg& b);

/// Human-readable rendering of a diff.
[[nodiscard]] std::string to_text(const SpecDiff& d);

}  // namespace sedspec::spec
