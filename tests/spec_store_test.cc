// SpecStore: copy-on-write snapshot semantics plus the persistence trust
// boundary — a serialized store round-trips byte-exactly, and a truncated
// or bit-flipped store is rejected with a structured LoadError, never a
// crash or a silently-wrong deployment.
#include <gtest/gtest.h>

#include "common/rng.h"
#include "guest/workload.h"
#include "spec/serial.h"
#include "spec/spec_store.h"

namespace sedspec {
namespace {

using spec::LoadStatus;
using spec::SnapshotRef;
using spec::SpecStore;

spec::EsCfg build_spec_for(const std::string& name) {
  auto w = guest::make_workload(name);
  return pipeline::build_spec(w->device(), [&] { w->training(); });
}

TEST(SpecStore, PublishVersionsMonotonicallyAndOldSnapshotsSurvive) {
  SpecStore store;
  spec::EsCfg cfg = build_spec_for("fdc");
  const SnapshotRef v1 = store.publish(cfg);
  ASSERT_NE(v1, nullptr);
  EXPECT_EQ(v1->version, 1u);
  EXPECT_EQ(store.version_of("fdc"), 1u);

  const SnapshotRef v2 = store.publish(cfg);
  EXPECT_EQ(v2->version, 2u);
  EXPECT_EQ(store.current("fdc"), v2);
  EXPECT_EQ(store.publish_count(), 2u);
  EXPECT_EQ(store.size(), 1u);

  // The superseded snapshot is untouched while pinned — the property the
  // concurrent redeploy path depends on.
  EXPECT_EQ(v1->version, 1u);
  EXPECT_EQ(v1->cfg.device_name, "fdc");

  EXPECT_EQ(store.current("nonesuch"), nullptr);
  EXPECT_EQ(store.version_of("nonesuch"), 0u);
}

TEST(SpecStore, SerializedStoreRoundTripsVersionsAndSpecs) {
  SpecStore store;
  const spec::EsCfg fdc = build_spec_for("fdc");
  store.publish(fdc);
  store.publish(fdc);  // fdc at v2
  store.publish(build_spec_for("pcnet"));

  const std::vector<uint8_t> bytes = store.serialize();
  SpecStore restored;
  const spec::LoadError err = SpecStore::load(bytes, restored);
  ASSERT_TRUE(err.ok()) << err.describe();

  EXPECT_EQ(restored.size(), 2u);
  EXPECT_EQ(restored.version_of("fdc"), 2u);
  EXPECT_EQ(restored.version_of("pcnet"), 1u);
  // Nested specs survive byte-exactly (serialize is deterministic).
  EXPECT_EQ(spec::serialize(restored.current("fdc")->cfg),
            spec::serialize(store.current("fdc")->cfg));
  EXPECT_EQ(spec::serialize(restored.current("pcnet")->cfg),
            spec::serialize(store.current("pcnet")->cfg));

  // Loading into a non-empty store is refused (no silent merge).
  SpecStore busy;
  busy.publish(fdc);
  EXPECT_EQ(SpecStore::load(bytes, busy).status, LoadStatus::kMalformed);
  EXPECT_EQ(busy.version_of("fdc"), 1u);
}

TEST(SpecStore, TruncationAtEveryLengthIsRejectedNotCrashed) {
  SpecStore store;
  store.publish(build_spec_for("fdc"));
  const std::vector<uint8_t> bytes = store.serialize();

  // Sweep a prefix of every length plus a few long ones: every truncation
  // must yield a structured rejection.
  for (size_t len = 0; len < bytes.size();
       len += (len < 64 ? 1 : bytes.size() / 37)) {
    SpecStore out;
    const spec::LoadError err =
        SpecStore::load(std::span(bytes.data(), len), out);
    EXPECT_FALSE(err.ok()) << "truncation to " << len << " bytes accepted";
    EXPECT_EQ(out.size(), 0u);
  }
}

TEST(SpecStore, SeededBitFlipsNeverCrashAndNeverLoadCorrupt) {
  SpecStore store;
  store.publish(build_spec_for("fdc"));
  const std::vector<uint8_t> golden = store.serialize();

  Rng rng(0xC0FFEE);
  for (int trial = 0; trial < 200; ++trial) {
    std::vector<uint8_t> bytes = golden;
    const size_t pos = rng.below(bytes.size());
    bytes[pos] ^= static_cast<uint8_t>(1u << rng.below(8));
    SpecStore out;
    const spec::LoadError err = SpecStore::load(bytes, out);
    // A payload flip must trip the CRC; an envelope flip trips magic /
    // version / length / CRC. Either way the store stays empty.
    EXPECT_FALSE(err.ok())
        << "bit flip at byte " << pos << " loaded successfully";
    EXPECT_EQ(out.size(), 0u);
  }
}

TEST(SpecStore, StoreEnvelopeStatusesMirrorSpecLoad) {
  SpecStore store;
  store.publish(build_spec_for("fdc"));
  std::vector<uint8_t> bytes = store.serialize();

  {
    SpecStore out;
    EXPECT_EQ(SpecStore::load(std::span(bytes.data(), 3), out).status,
              LoadStatus::kTooShort);
  }
  {
    std::vector<uint8_t> bad = bytes;
    bad[0] ^= 0xFF;
    SpecStore out;
    EXPECT_EQ(SpecStore::load(bad, out).status, LoadStatus::kBadMagic);
  }
  {
    std::vector<uint8_t> bad = bytes;
    bad[4] ^= 0xFF;  // format version field
    SpecStore out;
    EXPECT_EQ(SpecStore::load(bad, out).status, LoadStatus::kVersionSkew);
  }
  {
    std::vector<uint8_t> bad = bytes;
    bad.push_back(0);  // length no longer matches
    SpecStore out;
    EXPECT_EQ(SpecStore::load(bad, out).status, LoadStatus::kLengthMismatch);
  }
  {
    std::vector<uint8_t> bad = bytes;
    bad.back() ^= 0x01;  // payload flip
    SpecStore out;
    EXPECT_EQ(SpecStore::load(bad, out).status, LoadStatus::kCrcMismatch);
  }
}

}  // namespace
}  // namespace sedspec
