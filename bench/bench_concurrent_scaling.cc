// Concurrent enforcement scaling: aggregate checked-I/O throughput of the
// sharded EnforcementService at 1/2/4/8 shards, plus the single-shard
// per-round check latency (the "protection cost did not regress" guard).
//
// Methodology: every shard is one VM's FDC with its own checker, paying a
// modeled VM-exit cost per access under the *sleep* latency model — the
// trapped vCPU blocks rather than burns its core, exactly like a real
// guest waiting on the hypervisor, so concurrent shards overlap their I/O
// waits and aggregate throughput scales with the shard count even on a
// single-core host. Per-shard work is constant across configurations;
// wall time is measured over the whole run() (thread spawn to join).
//
// The check-latency pass runs separately with no exit cost and timing
// sampling on, so the reported ns are pure checker traversal per round.
#include <chrono>
#include <cstdio>
#include <string>
#include <vector>

#include "common/log.h"
#include "obs/metrics.h"
#include "report.h"
#include "sedspec/enforcement.h"

namespace {

using namespace sedspec;

constexpr uint64_t kOpsPerShard = 8;
constexpr uint64_t kExitCostNs = 50'000;  // requested; timer slack inflates

std::vector<enforce::ShardSpec> make_shards(size_t count) {
  std::vector<enforce::ShardSpec> shards(count);
  for (size_t i = 0; i < count; ++i) {
    shards[i].device = "fdc";
    shards[i].ops = kOpsPerShard;
    // Same seed everywhere: every shard performs the identical operation
    // mix, so per-shard work is constant across configurations.
    shards[i].seed = 7000;
    shards[i].mode = guest::InteractionMode::kSequential;
  }
  return shards;
}

struct Sample {
  double checked_io_per_s = 0;
  uint64_t rounds = 0;
};

Sample run_config(spec::SpecStore& store, size_t shard_count) {
  enforce::ServiceConfig config;
  config.spec_poll_ops = 0;  // steady state: no redeploys in the timed run
  config.bus_access_latency_ns = kExitCostNs;
  config.latency_model = IoBus::LatencyModel::kSleep;
  enforce::EnforcementService service(&store, config);

  const auto t0 = std::chrono::steady_clock::now();
  const enforce::RunReport report = service.run(make_shards(shard_count));
  const auto t1 = std::chrono::steady_clock::now();
  const double secs = std::chrono::duration<double>(t1 - t0).count();

  Sample s;
  s.rounds = report.fleet.rounds;
  s.checked_io_per_s = static_cast<double>(s.rounds) / secs;
  if (!report.ok()) {
    std::fprintf(stderr, "shard failure in %zu-shard run\n", shard_count);
  }
  return s;
}

double single_shard_check_latency_ns(spec::SpecStore& store) {
  enforce::ServiceConfig config;
  config.spec_poll_ops = 0;
  config.bus_access_latency_ns = 0;  // no exit model: isolate the checker
  enforce::EnforcementService service(&store, config);
  obs::set_timing_enabled(true);
  const enforce::RunReport report = service.run(make_shards(1));
  obs::set_timing_enabled(false);
  if (report.fleet.rounds == 0) {
    return 0;
  }
  return static_cast<double>(report.fleet.check_ns) /
         static_cast<double>(report.fleet.rounds);
}

}  // namespace

int main() {
  set_log_level(LogLevel::kError);
  bench_report::title(
      "Concurrent enforcement — aggregate checked-I/O scaling by shard "
      "count");
  bench_report::MetricSink sink("concurrent_scaling");

  spec::SpecStore store;
  enforce::publish_device_specs(store, {"fdc"});

  const double latency_ns = single_shard_check_latency_ns(store);
  std::printf("single-shard per-round check latency: %.0f ns\n\n",
              latency_ns);
  sink.put("per_op_check_latency_ns_shards_1", latency_ns);

  std::printf("%-8s | %16s %16s | %8s\n", "Shards", "checked I/O",
              "checked I/O/s", "speedup");
  bench_report::rule(60);

  double base = 0;
  for (size_t shards : {1u, 2u, 4u, 8u}) {
    const Sample s = run_config(store, shards);
    if (shards == 1) {
      base = s.checked_io_per_s;
    }
    const double speedup = base > 0 ? s.checked_io_per_s / base : 0;
    std::printf("%-8zu | %16llu %16.0f | %7.2fx\n", shards,
                static_cast<unsigned long long>(s.rounds),
                s.checked_io_per_s, speedup);
    const std::string suffix = std::to_string(shards);
    sink.put("aggregate_checked_io_per_s_shards_" + suffix,
             s.checked_io_per_s);
    sink.put("scaling_x" + suffix, speedup);
  }
  bench_report::rule(60);
  std::printf(
      "Shape check: with the sleep exit model, shards overlap their VM-exit\n"
      "waits — aggregate throughput at 4 shards should be >= 3x the single\n"
      "shard figure even on one core.\n");
  sink.write_json();
  return 0;
}
