// Tighten-only policy model (control/policy.h): OR-composition algebra,
// tenant → VM → device inheritance, config application, and the
// one-write-hardens-the-fleet integration with the enforcement service.
#include <gtest/gtest.h>

#include "control/policy.h"
#include "sedspec/enforcement.h"
#include "spec/spec_store.h"

namespace sedspec {
namespace {

using control::Policy;
using control::PolicyBits;
using control::PolicyTree;

TEST(PolicyBits, TightenIsMonotonicOr) {
  PolicyBits a;
  a.enforce = true;
  a.require_parameter = true;
  PolicyBits b;
  b.force_fail_closed = true;
  b.require_parameter = true;

  PolicyBits merged = a;
  merged.tighten(b);
  EXPECT_TRUE(merged.enforce);
  EXPECT_TRUE(merged.force_fail_closed);
  EXPECT_TRUE(merged.require_parameter);
  EXPECT_FALSE(merged.require_indirect);

  // Tightening never clears a bit: merging anything into `merged` keeps it
  // covering both inputs.
  EXPECT_TRUE(merged.covers(a));
  EXPECT_TRUE(merged.covers(b));
  EXPECT_FALSE(a.covers(b));

  EXPECT_FALSE(PolicyBits{}.any());
  EXPECT_TRUE(a.any());
}

TEST(PolicyBits, TightenIsIdempotentAndCommutative) {
  PolicyBits a;
  a.enforce = true;
  a.forbid_monitor_only = true;
  PolicyBits b;
  b.require_conditional = true;

  PolicyBits ab = a;
  ab.tighten(b);
  PolicyBits ba = b;
  ba.tighten(a);
  EXPECT_EQ(ab, ba);

  PolicyBits twice = ab;
  twice.tighten(ab);
  EXPECT_EQ(twice, ab);
}

TEST(Policy, EffectiveComposesFleetAndPerDevice) {
  Policy p;
  p.fleet.enforce = true;
  p.per_device["fdc"].require_conditional = true;

  const PolicyBits fdc = p.effective("fdc");
  EXPECT_TRUE(fdc.enforce);
  EXPECT_TRUE(fdc.require_conditional);

  const PolicyBits other = p.effective("sdhci");
  EXPECT_TRUE(other.enforce);
  EXPECT_FALSE(other.require_conditional);
}

TEST(PolicyTree, InheritanceTenantThenVmThenDevice) {
  PolicyTree tree;
  const uint64_t v0 = tree.version();

  Policy tenant;
  tenant.fleet.force_fail_closed = true;
  tree.tighten_tenant(tenant);

  Policy vm;
  vm.per_device["fdc"].enforce = true;
  tree.tighten_vm("vm3", vm);

  // Every policy write bumps the version shards poll on.
  EXPECT_EQ(tree.version(), v0 + 2);

  const PolicyBits vm3_fdc = tree.effective("vm3", "fdc");
  EXPECT_TRUE(vm3_fdc.force_fail_closed);  // inherited from the tenant
  EXPECT_TRUE(vm3_fdc.enforce);            // added at the VM layer

  // A different VM only sees the tenant layer; a different device on the
  // same VM misses the per-device bit.
  EXPECT_FALSE(tree.effective("vm9", "fdc").enforce);
  EXPECT_TRUE(tree.effective("vm9", "fdc").force_fail_closed);
  EXPECT_FALSE(tree.effective("vm3", "sdhci").enforce);
}

TEST(ApplyPolicy, ForcesOnlyEverTightens) {
  checker::CheckerConfig loose;
  loose.mode = checker::Mode::kEnhancement;
  loose.failure_policy = checker::FailurePolicy::kFailOpen;
  loose.enable_parameter = true;
  loose.enable_indirect = false;
  loose.enable_conditional = false;
  loose.monitor_only = true;

  PolicyBits bits;
  bits.force_protection = true;
  bits.force_fail_closed = true;
  bits.require_conditional = true;
  bits.forbid_monitor_only = true;

  const checker::CheckerConfig tight = control::apply_policy(bits, loose);
  EXPECT_EQ(tight.mode, checker::Mode::kProtection);
  EXPECT_EQ(tight.failure_policy, checker::FailurePolicy::kFailClosed);
  EXPECT_TRUE(tight.enable_parameter);  // never cleared
  EXPECT_TRUE(tight.enable_conditional);
  EXPECT_FALSE(tight.enable_indirect);  // policy did not ask for it
  EXPECT_FALSE(tight.monitor_only);

  EXPECT_TRUE(control::is_tightening_of(tight, loose));
  EXPECT_FALSE(control::is_tightening_of(loose, tight));

  // Applying no bits is the identity (and trivially a tightening).
  const checker::CheckerConfig same = control::apply_policy({}, loose);
  EXPECT_TRUE(control::is_tightening_of(same, loose));
  EXPECT_TRUE(control::is_tightening_of(loose, same));
}

// The "new CVE, enforce fdc everywhere now" flow: a fleet with an
// opted-out shard is hardened by ONE tenant-level policy write, picked up
// by the shard's policy polling mid-run.
TEST(PolicyEnforcement, OneTenantWriteProtectsOptedOutShard) {
  spec::SpecStore store;
  enforce::publish_device_specs(store, {"fdc"});

  control::PolicyTree tree;
  enforce::ServiceConfig svc;
  svc.policy = &tree;
  svc.spec_poll_ops = 8;

  std::vector<enforce::ShardSpec> shards(2);
  for (auto& s : shards) {
    s.device = "fdc";
    s.ops = 400;
  }
  shards[1].unprotected = true;
  // Deterministic mid-run write from the shard's own thread: at operation
  // 100 the tenant enforces fdc fleet-wide; the next policy poll must
  // deploy a checker on the opted-out shard.
  shards[1].op_hook = [&tree](uint64_t op) {
    if (op == 100) {
      control::Policy p;
      p.per_device["fdc"].enforce = true;
      tree.tighten_tenant(p);
    }
  };

  enforce::EnforcementService service(&store, svc);
  const enforce::RunReport report = service.run(shards);
  ASSERT_TRUE(report.ok()) << report.shards[1].error;

  const enforce::ShardResult& opted_out = report.shards[1];
  EXPECT_TRUE(opted_out.ended_protected);
  EXPECT_GE(opted_out.policy_redeploys, 1u);
  // The shard ran bare before the write, protected after: it checked
  // fewer rounds than it drove operations, but did check.
  EXPECT_GT(opted_out.stats.rounds, 0u);
  EXPECT_LT(opted_out.stats.rounds, opted_out.bus_accesses);
  // The always-protected sibling never needed a policy redeploy, but its
  // deploy-time config passed through the (empty-bits) policy unchanged.
  EXPECT_TRUE(report.shards[0].ended_protected);
  // Benign traffic stays benign under the tightened config.
  EXPECT_EQ(report.fleet.blocked, 0u);
}

// Opt-out is honored while NO layer enforces: same fleet, no policy write.
TEST(PolicyEnforcement, OptOutHonoredWithoutEnforceBit) {
  spec::SpecStore store;
  enforce::publish_device_specs(store, {"fdc"});

  control::PolicyTree tree;
  enforce::ServiceConfig svc;
  svc.policy = &tree;

  std::vector<enforce::ShardSpec> shards(1);
  shards[0].device = "fdc";
  shards[0].ops = 100;
  shards[0].unprotected = true;

  enforce::EnforcementService service(&store, svc);
  const enforce::RunReport report = service.run(shards);
  ASSERT_TRUE(report.ok());
  EXPECT_FALSE(report.shards[0].ended_protected);
  EXPECT_EQ(report.shards[0].stats.rounds, 0u);
  EXPECT_GT(report.shards[0].bus_accesses, 0u);
}

}  // namespace
}  // namespace sedspec
