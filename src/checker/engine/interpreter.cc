#include "checker/engine/interpreter.h"

#include <algorithm>

#include "common/assert.h"
#include "obs/trace.h"
#include "vdev/device.h"

namespace sedspec::checker::engine {

using sedspec::EvalCtx;
using sedspec::EvalDiag;
using sedspec::ExprRef;
using sedspec::Stmt;
using sedspec::StmtKind;
using spec::CondDir;
using spec::EsBlock;

InterpreterEngine::InterpreterEngine(const spec::EsCfg* cfg, Device* device,
                                     sedspec::StateArena* shadow,
                                     const CheckerConfig* config)
    : cfg_(cfg), device_(device), shadow_(shadow), config_(config) {
  build_aux();
}

void InterpreterEngine::build_aux() {
  const size_t site_count = device_->program().site_count();
  aux_.assign(site_count, BlockAux{});
  visits_.assign(site_count, 0);
  visit_epoch_.assign(site_count, 0);

  auto collect_syncs = [&](const ExprRef& e, std::vector<LocalId>* out) {
    if (e == nullptr) {
      return;
    }
    sedspec::visit(*e, [&](const sedspec::Expr& n) {
      if (n.kind == sedspec::ExprKind::kLocal &&
          cfg_->sync_locals.contains(n.local) &&
          std::find(out->begin(), out->end(), n.local) == out->end()) {
        out->push_back(n.local);
      }
    });
  };

  for (const auto& [site, block] : cfg_->blocks) {
    SEDSPEC_REQUIRE(site < site_count);
    BlockAux& aux = aux_[site];
    aux.block = &block;
    aux.visit_bound =
        std::max<uint64_t>(config_->visit_slack_min,
                           block.max_visits_per_round *
                               config_->visit_slack_multiplier);
    for (const Stmt& s : block.dsod) {
      collect_syncs(s.value, &aux.syncs);
      collect_syncs(s.index, &aux.syncs);
      collect_syncs(s.count, &aux.syncs);
      // The paper's parameter check bounds-validates a buffer access only
      // when "a device state index parameter is used" (§VI-A). A store
      // through a non-state temporary is applied to the shadow (modeling
      // the corruption) but not flagged — that is the documented
      // CVE-2015-7504 blind spot covered by the indirect-jump check.
      bool bounds = false;
      if (s.kind == StmtKind::kBufStore) {
        bounds = index_is_state_derived(*cfg_, s.index);
      } else if (s.kind == StmtKind::kBufFill) {
        bounds = index_is_state_derived(*cfg_, s.index) ||
                 index_is_state_derived(*cfg_, s.count);
      }
      aux.stmt_bounds.push_back(bounds ? 1 : 0);
    }
    collect_syncs(block.guard, &aux.syncs);
    collect_syncs(block.cmd_expr, &aux.syncs);
  }

  // Specs arrive from untrusted persistence: every transition target must
  // resolve to a real block, or traversal would land on a null aux entry.
  // SEDSPEC_REQUIRE throws logic_error, which deploy_serialized converts
  // into a kMalformed load rejection.
  const auto require_block = [&](SiteId site) {
    SEDSPEC_REQUIRE(site < site_count && aux_[site].block != nullptr);
  };
  const auto require_dir = [&](const spec::CondDir& d) {
    if (d.observed && !d.ends) {
      require_block(d.succ);
    }
  };
  for (const auto& [key, entry] : cfg_->entry_dispatch) {
    if (entry != sedspec::kInvalidSite) {
      require_block(entry);
    }
  }
  for (const auto& [site, block] : cfg_->blocks) {
    if (block.has_succ && !block.ends) {
      require_block(block.succ);
    }
    require_dir(block.taken);
    require_dir(block.not_taken);
    for (const auto& [cmd, dir] : block.cmd_dispatch) {
      require_dir(dir);
    }
  }

  entries_.assign(cfg_->entry_dispatch.begin(), cfg_->entry_dispatch.end());
}

void InterpreterEngine::resolve_syncs(const BlockAux& aux,
                                      const IoAccess& io) {
  // Sync points (paper §V-D): pause the simulation, read the variable's
  // current value from the device (against the shadow state, so loop-
  // carried locals resolve per encounter), then resume.
  for (sedspec::LocalId l : aux.syncs) {
    if (auto v = device_->resolve_sync(l, io, *shadow_); v.has_value()) {
      shadow_->set_local(l, *v);
    }
  }
}

struct InterpreterEngine::Traversal {
  const IoAccess* io = nullptr;
  std::vector<Violation> violations;
  SiteId current = sedspec::kInvalidSite;
  bool stop = false;  // successor unknown: traversal cannot continue
  uint64_t steps = 0;

  void add(Strategy s, SiteId site, std::string detail) {
    violations.push_back(Violation{s, site, std::move(detail)});
  }
};

void InterpreterEngine::exec_dsod(const BlockAux& aux, Traversal& t) {
  const EsBlock& block = *aux.block;
  for (size_t i = 0; i < block.dsod.size(); ++i) {
    const Stmt& s = block.dsod[i];
    EvalDiag diag;
    EvalCtx ctx;
    ctx.state = shadow_;
    ctx.io = t.io;
    ctx.checked = true;
    ctx.diag = &diag;
    switch (s.kind) {
      case StmtKind::kAssignParam: {
        const uint64_t v = eval_expr(*s.value, ctx);
        shadow_->set_param(s.param, v);
        break;
      }
      case StmtKind::kAssignLocal: {
        const uint64_t v = eval_expr(*s.value, ctx);
        shadow_->set_local(s.local, v);
        break;
      }
      case StmtKind::kBufStore: {
        const uint64_t idx = eval_expr(*s.index, ctx);
        const uint64_t val = eval_expr(*s.value, ctx);
        shadow_->buf_store(s.param, idx, val,
                           aux.stmt_bounds[i] != 0 ? &diag : nullptr);
        break;
      }
      case StmtKind::kBufFill: {
        const uint64_t idx = eval_expr(*s.index, ctx);
        const uint64_t count = eval_expr(*s.count, ctx);
        shadow_->buf_fill(s.param, idx, count,
                          aux.stmt_bounds[i] != 0 ? &diag : nullptr);
        break;
      }
    }
    if (!diag.any()) {
      continue;
    }
    if (diag.note.empty()) {
      diag.note = s.note;
    }
    if (diag.kind == EvalDiag::Kind::kMissingLocal) {
      // The simulation could not resolve a sync variable: the spec cannot
      // follow this path. Reported under the conditional-jump strategy.
      if (strategy_enabled(*config_, Strategy::kConditionalJump)) {
        t.add(Strategy::kConditionalJump, block.site,
              detail::unresolved_sync(diag));
      }
    } else if (strategy_enabled(*config_, Strategy::kParameter)) {
      t.add(Strategy::kParameter, block.site, diag.describe());
    }
  }
}

CheckResult InterpreterEngine::check(const IoAccess& io,
                                     const RoundOptions& opts) {
  CheckResult result;
  Traversal t;
  t.io = &io;

  // Per-step events are high-frequency; only a verbose tracer records them.
  obs::EventTracer* tr = obs::tracer();
  const bool step_events = tr != nullptr && tr->verbose();

  ++epoch_;

  // The watchdog must sit strictly above the policy budget, or it would
  // preempt the ordinary (violation-producing) budget check.
  const uint64_t watchdog =
      std::max(config_->watchdog_steps, config_->max_steps + 1);

  // Entry dispatch (paper §V-A: the entry block parses the target
  // address/port of the I/O request).
  const sedspec::IoKey key = sedspec::key_of(io);
  SiteId entry = sedspec::kInvalidSite;
  bool have_entry = false;
  for (const auto& [k, site] : entries_) {
    if (k == key) {
      entry = site;
      have_entry = true;
      break;
    }
  }
  if (!have_entry) {
    if (strategy_enabled(*config_, Strategy::kConditionalJump)) {
      t.add(Strategy::kConditionalJump, sedspec::kInvalidSite,
            detail::untrained_io(io));
    }
    result.violations = std::move(t.violations);
    return result;
  }
  t.current = entry;

  while (!t.stop && t.current != sedspec::kInvalidSite) {
    ++t.steps;
    if (t.steps > watchdog) {
      // Hard backstop: the ordinary budget check below should have ended
      // this round long ago. Reaching here means the termination logic
      // itself is broken — escalate into the containment domain.
      throw CheckerFault(detail::watchdog_tripped(t.steps));
    }
    if (t.steps > config_->max_steps && !opts.suppress_termination) {
      if (strategy_enabled(*config_, Strategy::kConditionalJump)) {
        t.add(Strategy::kConditionalJump, t.current,
              std::string(detail::kBudgetExceeded));
      }
      break;
    }
    const BlockAux& aux = aux_[t.current];
    if (aux.block == nullptr) {
      // Belt and braces under build_aux()'s load-time validation: never
      // dereference an unmapped site, contain it instead.
      throw CheckerFault(detail::unmapped_site(t.current));
    }
    const EsBlock& block = *aux.block;
    if (step_events) {
      tr->record(obs::EventType::kTraversalStep, "traversal_step",
                 cfg_->device_name, block.name, t.current);
    }

    // Per-round visit bound (trained loop shape).
    if (visit_epoch_[t.current] != epoch_) {
      visit_epoch_[t.current] = epoch_;
      visits_[t.current] = 0;
    }
    if (++visits_[t.current] > aux.visit_bound &&
        !opts.suppress_termination) {
      if (strategy_enabled(*config_, Strategy::kConditionalJump)) {
        t.add(Strategy::kConditionalJump, t.current,
              detail::visit_bound(block.name, visits_[t.current],
                                  block.max_visits_per_round));
      }
      break;
    }

    if (!aux.syncs.empty()) {
      resolve_syncs(aux, io);
    }

    // Command access control table.
    if (active_cmd_.has_value() &&
        strategy_enabled(*config_, Strategy::kConditionalJump)) {
      const auto cmd_it = cfg_->commands.find(*active_cmd_);
      if (cmd_it != cfg_->commands.end() &&
          !cmd_it->second.access.contains(t.current)) {
        t.add(Strategy::kConditionalJump, t.current,
              detail::cmd_access(block.name, *active_cmd_));
      }
    }

    exec_dsod(aux, t);

    // Transition.
    switch (block.kind) {
      case sedspec::BlockKind::kConditional: {
        if (block.merged) {
          t.current = block.has_succ ? block.succ : sedspec::kInvalidSite;
          break;
        }
        EvalDiag diag;
        EvalCtx ctx;
        ctx.state = shadow_;
        ctx.io = t.io;
        ctx.checked = true;
        ctx.diag = &diag;
        const bool taken = eval_expr(*block.guard, ctx) != 0;
        if (diag.any()) {
          if (diag.kind == EvalDiag::Kind::kMissingLocal) {
            if (strategy_enabled(*config_, Strategy::kConditionalJump)) {
              t.add(Strategy::kConditionalJump, block.site,
                    std::string(detail::kGuardUnresolvedSync));
            }
          } else if (strategy_enabled(*config_, Strategy::kParameter)) {
            t.add(Strategy::kParameter, block.site,
                  detail::guard_diag(diag));
          }
        }
        const CondDir& dir = taken ? block.taken : block.not_taken;
        if (!dir.observed) {
          if (strategy_enabled(*config_, Strategy::kConditionalJump)) {
            t.add(Strategy::kConditionalJump, block.site,
                  detail::untrained_direction(block.name, taken));
          }
          t.stop = true;
        } else if (dir.ends) {
          t.current = sedspec::kInvalidSite;
        } else {
          t.current = dir.succ;
        }
        break;
      }
      case sedspec::BlockKind::kCmdDecision: {
        EvalDiag diag;
        EvalCtx ctx;
        ctx.state = shadow_;
        ctx.io = t.io;
        ctx.checked = true;
        ctx.diag = &diag;
        const uint64_t cmd = eval_expr(*block.cmd_expr, ctx);
        if (diag.any() && diag.kind != EvalDiag::Kind::kMissingLocal &&
            strategy_enabled(*config_, Strategy::kParameter)) {
          t.add(Strategy::kParameter, block.site,
                detail::cmd_decode_diag(diag));
        }
        const auto disp = block.cmd_dispatch.find(cmd);
        if (disp == block.cmd_dispatch.end() || !disp->second.observed) {
          if (strategy_enabled(*config_, Strategy::kConditionalJump)) {
            t.add(Strategy::kConditionalJump, block.site,
                  detail::untrained_cmd(block.name, cmd));
          }
          t.stop = true;
          break;
        }
        active_cmd_ = cmd;
        t.current =
            disp->second.ends ? sedspec::kInvalidSite : disp->second.succ;
        break;
      }
      case sedspec::BlockKind::kIndirect: {
        const uint64_t target = shadow_->param(block.fp_param);
        if (strategy_enabled(*config_, Strategy::kIndirectJump) &&
            !block.fp_targets.contains(target)) {
          t.add(Strategy::kIndirectJump, block.site,
                detail::indirect_target(block.name, target));
        }
        t.current = block.has_succ ? block.succ : sedspec::kInvalidSite;
        if (!block.has_succ && !block.ends) {
          t.stop = true;
        }
        break;
      }
      case sedspec::BlockKind::kCmdEnd:
        active_cmd_.reset();
        t.current = block.has_succ ? block.succ : sedspec::kInvalidSite;
        break;
      case sedspec::BlockKind::kPlain:
        t.current = block.has_succ ? block.succ : sedspec::kInvalidSite;
        break;
    }
  }

  result.violations = std::move(t.violations);
  result.steps = t.steps;
  return result;
}

}  // namespace sedspec::checker::engine
