#include "devices/ehci.h"

#include <algorithm>

#include "common/assert.h"

namespace sedspec::devices {

namespace {

using sedspec::eb::add;
using sedspec::eb::band;
using sedspec::eb::bor;
using sedspec::eb::c;
using sedspec::eb::cast;
using sedspec::eb::eq;
using sedspec::eb::ge;
using sedspec::eb::gt;
using sedspec::eb::io_value;
using sedspec::eb::local;
using sedspec::eb::ne;
using sedspec::eb::param;
using sedspec::eb::shl;
using sedspec::eb::sub;

constexpr IntType U8 = IntType::kU8;
constexpr IntType U32 = IntType::kU32;
constexpr IntType I32 = IntType::kI32;

}  // namespace

EhciDevice::EhciDevice(sedspec::GuestMemory* mem, Vulns vulns)
    : EhciDevice(std::make_unique<Blueprint>([&] {
        Blueprint bp;
        StateLayout layout("EHCIState+USBDevice");
        bp.usbcmd = layout.add_scalar("usbcmd", FieldKind::kRegister, U32);
        bp.usbsts = layout.add_scalar("usbsts", FieldKind::kRegister, U32);
        bp.asynclistaddr =
            layout.add_scalar("asynclistaddr", FieldKind::kRegister, U32);
        bp.portsc = layout.add_scalar("portsc", FieldKind::kRegister, U32);
        bp.setup_buf = layout.add_buffer("setup_buf", 1, kSetupBufSize);
        bp.data_buf = layout.add_buffer("data_buf", 1, kDataBufSize);
        bp.setup_state =
            layout.add_scalar("setup_state", FieldKind::kFlag, U8);
        bp.setup_len = layout.add_scalar("setup_len", FieldKind::kLength, I32);
        bp.setup_index =
            layout.add_scalar("setup_index", FieldKind::kIndex, I32);
        bp.irq_fn = layout.add_funcptr("irq_fn");

        DeviceProgram prog("usb-ehci", std::move(layout),
                           /*code_base=*/0x800000);
        bp.f_irq = prog.add_function("ehci_raise_irq");
        bp.l_pid = prog.add_local("qtd_pid");
        bp.l_len = prog.add_local("qtd_len");
        bp.l_s0 = prog.add_local("setup_bmRequestType");
        bp.l_s6 = prog.add_local("setup_wLength_lo");
        bp.l_s7 = prog.add_local("setup_wLength_hi");

        auto P = [&](ParamId p, IntType t) { return param(p, t); };
        ExprRef remaining =
            sub(P(bp.setup_len, I32), P(bp.setup_index, I32), I32);

        // --- Operational registers -----------------------------------------
        bp.s_usbcmd_set = prog.add_plain(
            "ehci_opreg_write.usbcmd", {sb::assign(bp.usbcmd, io_value(U32))});
        bp.s_doorbellq = prog.add_conditional(
            "ehci_opreg_write.doorbell",
            ne(band(io_value(U32), c(kCmdDoorbell, U32), U32), c(0, U32)));
        bp.s_runq = prog.add_conditional(
            "ehci_opreg_write.run",
            ne(band(io_value(U32), c(kCmdRun, U32), U32), c(0, U32)));
        bp.s_run = prog.add_plain(
            "ehci_set_running",
            {sb::assign(bp.usbsts,
                        band(P(bp.usbsts, U32), c(~0x1000u, U32), U32),
                        "usbsts &= ~HCHALTED")});
        bp.s_halt = prog.add_plain(
            "ehci_set_halted",
            {sb::assign(bp.usbsts, bor(P(bp.usbsts, U32), c(0x1000, U32), U32),
                        "usbsts |= HCHALTED")});
        bp.s_sts_read = prog.add_plain("ehci_opreg_read.usbsts", {});
        bp.s_sts_clear = prog.add_plain(
            "ehci_opreg_write.usbsts",
            {sb::assign(bp.usbsts,
                        band(P(bp.usbsts, U32),
                             sedspec::eb::un(sedspec::UnaryOp::kBitNot,
                                             io_value(U32), U32),
                             U32),
                        "usbsts &= ~value  /* RW1C */")});
        bp.s_portsc_read = prog.add_plain("ehci_opreg_read.portsc", {});
        bp.s_portsc_set = prog.add_plain(
            "ehci_opreg_write.portsc", {sb::assign(bp.portsc, io_value(U32))});
        bp.s_async_set = prog.add_plain(
            "ehci_opreg_write.asynclistaddr",
            {sb::assign(bp.asynclistaddr, io_value(U32))});

        // --- Token processing -------------------------------------------------
        bp.s_pid_setupq = prog.add_conditional(
            "ehci_execute.pid_setup", eq(local(bp.l_pid, U32),
                                         c(kPidSetup, U32)));
        bp.s_do_setup = prog.add_plain(
            "usb_do_token_setup",
            {sb::buf_fill(bp.setup_buf, c(0, U32), c(kSetupBufSize, U32),
                          "setup_buf <- guest packet"),
             sb::buf_store(bp.setup_buf, c(0, U32), local(bp.l_s0, U8)),
             sb::buf_store(bp.setup_buf, c(6, U32), local(bp.l_s6, U8)),
             sb::buf_store(bp.setup_buf, c(7, U32), local(bp.l_s7, U8)),
             sb::assign(bp.setup_len,
                        bor(cast(local(bp.l_s6, U8), I32),
                            shl(cast(local(bp.l_s7, U8), I32), c(8, I32), I32),
                            I32),
                        "setup_len = wLength"),
             sb::assign(bp.setup_index, c(0, I32)),
             sb::assign(bp.setup_state, c(1, U8), "SETUP_STATE_DATA")});
        bp.s_setup_boundq = prog.add_conditional(  // patched only
            "usb_do_token_setup.bound",
            gt(P(bp.setup_len, I32), c(kDataBufSize, I32)));
        bp.s_setup_stall = prog.add_plain(
            "usb_do_token_setup.stall",
            {sb::assign(bp.setup_state, c(0, U8)),
             sb::assign(bp.setup_len, c(0, I32))});
        bp.s_setup_done = prog.add_plain(
            "usb_setup_complete",
            {sb::assign(bp.usbsts, bor(P(bp.usbsts, U32), c(1, U32), U32),
                        "usbsts |= USBINT")});
        bp.s_irq_setup = prog.add_indirect("ehci_irq.setup", bp.irq_fn);

        bp.s_pid_inq = prog.add_conditional(
            "ehci_execute.pid_in", eq(local(bp.l_pid, U32), c(kPidIn, U32)));
        bp.s_in_activeq = prog.add_conditional(
            "usb_do_token_in.active", eq(P(bp.setup_state, U8), c(1, U8)));
        bp.s_in_clampq = prog.add_conditional(
            "usb_do_token_in.clamp",
            gt(cast(local(bp.l_len, U32), I32), remaining));
        bp.s_in_clamped = prog.add_plain(
            "usb_do_token_in.short",
            {sb::assign(bp.setup_index, P(bp.setup_len, I32),
                        "setup_index = setup_len")});
        bp.s_in_full = prog.add_plain(
            "usb_do_token_in.copy",
            {sb::assign(bp.setup_index,
                        add(P(bp.setup_index, I32),
                            cast(local(bp.l_len, U32), I32), I32),
                        "setup_index += len")});
        bp.s_in_doneq = prog.add_conditional(
            "usb_do_token_in.done",
            ge(P(bp.setup_index, I32), P(bp.setup_len, I32)));
        bp.s_in_complete = prog.add_plain(
            "usb_do_token_in.complete",
            {sb::assign(bp.setup_state, c(2, U8), "SETUP_STATE_ACK")});
        bp.s_irq_in = prog.add_indirect("ehci_irq.token_in", bp.irq_fn);
        bp.s_in_idle = prog.add_plain("usb_do_token_in.idle_poll", {});
        bp.s_irq_poll = prog.add_indirect("ehci_irq.poll", bp.irq_fn);

        bp.s_pid_outq = prog.add_conditional(
            "ehci_execute.pid_out", eq(local(bp.l_pid, U32), c(kPidOut, U32)));
        bp.s_out_zeroq = prog.add_conditional(
            "usb_do_token_out.status", eq(local(bp.l_len, U32), c(0, U32)));
        bp.s_status_out = prog.add_plain(
            "usb_control_transfer_status",
            {sb::assign(bp.setup_state, c(0, U8), "SETUP_STATE_IDLE")});
        bp.s_irq_status = prog.add_indirect("ehci_irq.status", bp.irq_fn);
        bp.s_out_activeq = prog.add_conditional(
            "usb_do_token_out.active", eq(P(bp.setup_state, U8), c(1, U8)));
        bp.s_out_clampq = prog.add_conditional(
            "usb_do_token_out.clamp",
            gt(cast(local(bp.l_len, U32), I32), remaining));
        bp.s_out_clamped = prog.add_plain(
            "usb_do_token_out.short",
            {sb::buf_fill(bp.data_buf, P(bp.setup_index, I32), remaining,
                          "memcpy(data_buf + setup_index, ..., remaining)"),
             sb::assign(bp.setup_index, P(bp.setup_len, I32))});
        bp.s_out_full = prog.add_plain(
            "usb_do_token_out.copy",
            {sb::buf_fill(bp.data_buf, P(bp.setup_index, I32),
                          local(bp.l_len, U32),
                          "memcpy(data_buf + setup_index, ..., len)"),
             sb::assign(bp.setup_index,
                        add(P(bp.setup_index, I32),
                            cast(local(bp.l_len, U32), I32), I32),
                        "setup_index += len")});
        bp.s_out_doneq = prog.add_conditional(
            "usb_do_token_out.done",
            ge(P(bp.setup_index, I32), P(bp.setup_len, I32)));
        bp.s_out_complete = prog.add_plain(
            "usb_do_token_out.complete",
            {sb::assign(bp.setup_state, c(2, U8), "SETUP_STATE_ACK")});
        bp.s_irq_out = prog.add_indirect("ehci_irq.token_out", bp.irq_fn);
        bp.s_out_idle = prog.add_plain("usb_do_token_out.idle", {});
        bp.s_bad_pid = prog.add_plain("ehci_execute.bad_pid", {});

        bp.program = std::make_unique<DeviceProgram>(std::move(prog));
        return bp;
      }()),
                 mem, vulns) {}

EhciDevice::EhciDevice(std::unique_ptr<Blueprint> bp,
                       sedspec::GuestMemory* mem, Vulns vulns)
    : Device(bp->program.get()),
      bp_(std::move(bp)),
      vulns_(vulns),
      dma_(mem),
      storage_(kStorageSize, 0) {
  ictx().bind_function(bp_->f_irq, [this] { irq_line().pulse(); });
  reset();
}

EhciDevice::~EhciDevice() = default;

void EhciDevice::reset_device() {
  state().set(bp_->usbsts, 0x1000);  // halted
  state().set(bp_->portsc, 0x1005);  // connected, enabled, powered
  state().set(bp_->irq_fn, bp_->f_irq);
  packet_ = PacketState::kNone;
  storage_loaded_ = false;
}

uint64_t EhciDevice::qtd_addr(const sedspec::StateAccess& view) const {
  return view.param(bp_->asynclistaddr);
}

std::optional<uint64_t> EhciDevice::resolve_sync(
    sedspec::LocalId id, const sedspec::IoAccess& /*io*/,
    const sedspec::StateAccess& view) {
  const sedspec::GuestMemory& mem = dma_.memory();
  const uint64_t qtd = qtd_addr(view);
  const uint32_t token = mem.r32(qtd);
  if (id == bp_->l_pid) {
    return token & 3;
  }
  if (id == bp_->l_len) {
    return (token >> 16) & 0xffff;
  }
  const uint64_t buf = mem.r32(qtd + 4);
  if (id == bp_->l_s0) {
    return mem.r8(buf);
  }
  if (id == bp_->l_s6) {
    return mem.r8(buf + 6);
  }
  if (id == bp_->l_s7) {
    return mem.r8(buf + 7);
  }
  return std::nullopt;
}

uint64_t EhciDevice::io_read(const sedspec::IoAccess& io) {
  IoRound round(ictx(), io);
  switch (io.addr - kBaseAddr) {
    case kRegUsbSts:
      ictx().block(bp_->s_sts_read);
      return state().get(bp_->usbsts);
    case kRegPortSc:
      ictx().block(bp_->s_portsc_read);
      return state().get(bp_->portsc);
    default:
      return 0;
  }
}

void EhciDevice::io_write(const sedspec::IoAccess& io) {
  IoRound round(ictx(), io);
  switch (io.addr - kBaseAddr) {
    case kRegUsbCmd:
      usbcmd_write(io);
      return;
    case kRegUsbSts:
      ictx().block(bp_->s_sts_clear);
      return;
    case kRegAsyncListAddr:
      ictx().block(bp_->s_async_set);
      return;
    case kRegPortSc:
      ictx().block(bp_->s_portsc_set);
      return;
    default:
      return;
  }
}

void EhciDevice::usbcmd_write(const sedspec::IoAccess& /*io*/) {
  auto& ic = ictx();
  ic.block(bp_->s_usbcmd_set);
  if (ic.branch(bp_->s_doorbellq)) {
    process_qtd();
    return;
  }
  if (ic.branch(bp_->s_runq)) {
    ic.block(bp_->s_run);
  } else {
    ic.block(bp_->s_halt);
  }
}

void EhciDevice::process_qtd() {
  auto& ic = ictx();
  const uint64_t qtd = qtd_addr(state());
  const uint32_t token = dma_.memory().r32(qtd);
  const uint64_t buf = dma_.memory().r32(qtd + 4);
  const uint32_t pid = token & 3;
  const uint32_t len = (token >> 16) & 0xffff;
  ic.set_local(bp_->l_pid, pid);
  ic.set_local(bp_->l_len, len);

  if (ic.branch(bp_->s_pid_setupq)) {
    do_setup(buf);
    return;
  }
  if (ic.branch(bp_->s_pid_inq)) {
    do_in(len, buf);
    return;
  }
  if (ic.branch(bp_->s_pid_outq)) {
    do_out(len, buf);
    return;
  }
  ic.block(bp_->s_bad_pid);
}

void EhciDevice::do_setup(uint64_t buf_addr) {
  auto& ic = ictx();
  ic.set_local(bp_->l_s0, dma_.memory().r8(buf_addr));
  ic.set_local(bp_->l_s6, dma_.memory().r8(buf_addr + 6));
  ic.set_local(bp_->l_s7, dma_.memory().r8(buf_addr + 7));
  ic.block(bp_->s_do_setup, [&](std::span<uint8_t> dst) {
    dma_.from_guest(buf_addr, dst);
  });
  if (!vulns_.cve_2020_14364) {
    if (ic.branch(bp_->s_setup_boundq)) {
      ic.block(bp_->s_setup_stall);
      return;
    }
  }
  packet_ = PacketState::kLive;
  storage_loaded_ = false;
  ic.block(bp_->s_setup_done);
  ic.indirect(bp_->s_irq_setup);
}

void EhciDevice::do_in(uint32_t len, uint64_t buf_addr) {
  auto& ic = ictx();
  if (!ic.branch(bp_->s_in_activeq)) {
    // Idle interrupt-endpoint poll: a perfectly normal guest operation —
    // and the CVE-2016-1568 use-after-free surface.
    if (packet_ == PacketState::kFreed) {
      record_incident(
          Incident{IncidentKind::kUseAfterFree, sedspec::kInvalidParam, 0,
                   "idle IN poll touched a freed USBPacket"});
      packet_ = PacketState::kNone;
    }
    ic.block(bp_->s_in_idle);
    ic.indirect(bp_->s_irq_poll);
    return;
  }
  // Lazy storage load for vendor read requests.
  auto setup = state().buffer_span(bp_->setup_buf);
  if (!storage_loaded_ && setup[1] == kReqRead) {
    backend_delay();  // storage-image read
    const uint64_t block = setup[2] | (uint64_t{setup[3]} << 8);
    const uint64_t off = block * kBlockSize;
    auto data = state().buffer_span(bp_->data_buf);
    const auto want = static_cast<uint64_t>(
        std::min<int64_t>(static_cast<int64_t>(data.size()),
                          std::max<int64_t>(
                              0, static_cast<int64_t>(
                                     state().get(bp_->setup_len)))));
    for (uint64_t i = 0; i < want && off + i < storage_.size(); ++i) {
      data[i] = storage_[off + i];
    }
    storage_loaded_ = true;
  }
  const auto index = static_cast<int64_t>(
      static_cast<int32_t>(state().get(bp_->setup_index)));
  const auto setup_len = static_cast<int64_t>(
      static_cast<int32_t>(state().get(bp_->setup_len)));
  int64_t n = len;
  const bool clamp = ic.branch(bp_->s_in_clampq);
  if (clamp) {
    n = setup_len - index;
  }
  // Copy data_buf[index .. index+n) to the guest (bounds per the real
  // device: reads beyond the buffer leak adjacent memory).
  if (n > 0) {
    auto data = state().buffer_span(bp_->data_buf);
    std::vector<uint8_t> out(static_cast<size_t>(n), 0);
    bool oob = false;
    for (int64_t i = 0; i < n; ++i) {
      const int64_t src = index + i;
      if (src >= 0 && src < static_cast<int64_t>(data.size())) {
        out[static_cast<size_t>(i)] = data[static_cast<size_t>(src)];
      } else {
        oob = true;
      }
    }
    if (oob) {
      record_incident(Incident{IncidentKind::kOobRead, bp_->data_buf,
                               static_cast<uint64_t>(index),
                               "usb_do_token_in leak"});
    }
    dma_.to_guest(buf_addr, out);
  }
  ic.block(clamp ? bp_->s_in_clamped : bp_->s_in_full);
  if (ic.branch(bp_->s_in_doneq)) {
    ic.block(bp_->s_in_complete);
  }
  ic.indirect(bp_->s_irq_in);
}

void EhciDevice::do_out(uint32_t /*len*/, uint64_t buf_addr) {
  auto& ic = ictx();
  if (ic.branch(bp_->s_out_zeroq)) {
    // Status stage: completes (or prematurely cancels) the control
    // transfer. Packet cleanup is native heap management; the unpatched
    // premature-cancel path forgets to clear the pointer (CVE-2016-1568).
    const auto index = static_cast<int32_t>(state().get(bp_->setup_index));
    const auto setup_len = static_cast<int32_t>(state().get(bp_->setup_len));
    const bool premature =
        state().get(bp_->setup_state) == 1 && index < setup_len;
    if (packet_ == PacketState::kLive) {
      packet_ = (premature && vulns_.cve_2016_1568) ? PacketState::kFreed
                                                    : PacketState::kNone;
    }
    ic.block(bp_->s_status_out);
    ic.indirect(bp_->s_irq_status);
    return;
  }
  if (!ic.branch(bp_->s_out_activeq)) {
    ic.block(bp_->s_out_idle);
    return;
  }
  const bool clamp = ic.branch(bp_->s_out_clampq);
  const uint64_t src = buf_addr;
  if (clamp) {
    ic.block(bp_->s_out_clamped, [&](std::span<uint8_t> dst) {
      dma_.from_guest(src, dst);
    });
  } else {
    ic.block(bp_->s_out_full, [&](std::span<uint8_t> dst) {
      dma_.from_guest(src, dst);
    });
  }
  if (ic.branch(bp_->s_out_doneq)) {
    // Commit vendor writes to backing storage.
    auto setup = state().buffer_span(bp_->setup_buf);
    if (setup[1] == kReqWrite) {
      backend_delay();  // storage-image write
      const uint64_t block = setup[2] | (uint64_t{setup[3]} << 8);
      const uint64_t off = block * kBlockSize;
      auto data = state().buffer_span(bp_->data_buf);
      const auto n = static_cast<uint64_t>(std::min<int64_t>(
          static_cast<int64_t>(data.size()),
          std::max<int64_t>(0, static_cast<int64_t>(static_cast<int32_t>(
                                   state().get(bp_->setup_len))))));
      for (uint64_t i = 0; i < n && off + i < storage_.size(); ++i) {
        storage_[off + i] = data[i];
      }
    }
    ic.block(bp_->s_out_complete);
  }
  ic.indirect(bp_->s_irq_out);
}

}  // namespace sedspec::devices
