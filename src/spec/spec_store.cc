#include "spec/spec_store.h"

#include "common/bytes.h"
#include "common/crc32.h"

namespace sedspec::spec {

namespace {

constexpr uint32_t kStoreMagic = 0x53535452u;  // "SSTR"
constexpr size_t kEnvelope = kSpecEnvelopeSize;

void put_u32_at(std::vector<uint8_t>& bytes, size_t pos, uint32_t v) {
  bytes[pos + 0] = static_cast<uint8_t>(v);
  bytes[pos + 1] = static_cast<uint8_t>(v >> 8);
  bytes[pos + 2] = static_cast<uint8_t>(v >> 16);
  bytes[pos + 3] = static_cast<uint8_t>(v >> 24);
}

uint32_t get_u32_at(std::span<const uint8_t> bytes, size_t pos) {
  return static_cast<uint32_t>(bytes[pos]) |
         static_cast<uint32_t>(bytes[pos + 1]) << 8 |
         static_cast<uint32_t>(bytes[pos + 2]) << 16 |
         static_cast<uint32_t>(bytes[pos + 3]) << 24;
}

LoadError fail(LoadStatus status, std::string detail) {
  LoadError e;
  e.status = status;
  e.detail = std::move(detail);
  return e;
}

}  // namespace

SnapshotRef SpecStore::publish(EsCfg cfg) {
  std::lock_guard lock(mu_);
  auto snap = std::make_shared<SpecSnapshot>();
  snap->device_name = cfg.device_name;
  auto it = specs_.find(snap->device_name);
  snap->version = it == specs_.end() ? 1 : it->second->version + 1;
  snap->cfg = std::move(cfg);
  SnapshotRef ref = snap;
  specs_[ref->device_name] = ref;
  ++publishes_;
  return ref;
}

SnapshotRef SpecStore::current(const std::string& device_name) const {
  std::lock_guard lock(mu_);
  auto it = specs_.find(device_name);
  return it == specs_.end() ? nullptr : it->second;
}

uint64_t SpecStore::version_of(const std::string& device_name) const {
  std::lock_guard lock(mu_);
  auto it = specs_.find(device_name);
  return it == specs_.end() ? 0 : it->second->version;
}

std::vector<std::string> SpecStore::device_names() const {
  std::lock_guard lock(mu_);
  std::vector<std::string> out;
  out.reserve(specs_.size());
  for (const auto& [name, snap] : specs_) {
    out.push_back(name);
  }
  return out;
}

size_t SpecStore::size() const {
  std::lock_guard lock(mu_);
  return specs_.size();
}

uint64_t SpecStore::publish_count() const {
  std::lock_guard lock(mu_);
  return publishes_;
}

std::vector<uint8_t> SpecStore::serialize() const {
  std::lock_guard lock(mu_);
  sedspec::ByteWriter w;
  w.u32(kStoreMagic);
  w.u32(kStoreFormatVersion);
  w.u32(0);  // payload length, patched below
  w.u32(0);  // payload crc32, patched below
  w.u32(static_cast<uint32_t>(specs_.size()));
  for (const auto& [name, snap] : specs_) {
    w.str(name);
    w.u64(snap->version);
    const std::vector<uint8_t> spec_bytes = spec::serialize(snap->cfg);
    w.varbytes(spec_bytes);
  }
  std::vector<uint8_t> bytes = w.take();
  const std::span<const uint8_t> payload{bytes.data() + kEnvelope,
                                         bytes.size() - kEnvelope};
  put_u32_at(bytes, 8, static_cast<uint32_t>(payload.size()));
  put_u32_at(bytes, 12, crc32(payload));
  return bytes;
}

LoadError SpecStore::load(std::span<const uint8_t> bytes, SpecStore& out) {
  if (bytes.size() < kEnvelope) {
    return fail(LoadStatus::kTooShort,
                "store buffer holds " + std::to_string(bytes.size()) +
                    " bytes, envelope needs " + std::to_string(kEnvelope));
  }
  if (get_u32_at(bytes, 0) != kStoreMagic) {
    return fail(LoadStatus::kBadMagic, "not a spec-store artifact");
  }
  const uint32_t version = get_u32_at(bytes, 4);
  if (version != kStoreFormatVersion) {
    return fail(LoadStatus::kVersionSkew,
                "store format v" + std::to_string(version) + ", loader is v" +
                    std::to_string(kStoreFormatVersion));
  }
  const std::span<const uint8_t> payload = bytes.subspan(kEnvelope);
  if (get_u32_at(bytes, 8) != payload.size()) {
    return fail(LoadStatus::kLengthMismatch,
                "envelope claims " + std::to_string(get_u32_at(bytes, 8)) +
                    " payload bytes, " + std::to_string(payload.size()) +
                    " present");
  }
  if (get_u32_at(bytes, 12) != crc32(payload)) {
    return fail(LoadStatus::kCrcMismatch,
                "store payload integrity check failed");
  }

  // Envelope intact: decode the entry list. ByteReader throws DecodeError
  // on truncation/overrun; any nested spec is validated by spec::load
  // (its own envelope + structural decode).
  std::map<std::string, SnapshotRef> restored;
  try {
    sedspec::ByteReader r(payload);
    const uint32_t count = r.u32();
    for (uint32_t i = 0; i < count; ++i) {
      const std::string name = r.str();
      const uint64_t snap_version = r.u64();
      const std::vector<uint8_t> spec_bytes = r.varbytes();
      LoadResult nested = spec::load(spec_bytes);
      if (!nested.ok()) {
        LoadError e = nested.error;
        e.detail = "spec '" + name + "': " + e.detail;
        return e;
      }
      if (nested.cfg->device_name != name) {
        return fail(LoadStatus::kMalformed,
                    "store entry '" + name + "' wraps a spec for '" +
                        nested.cfg->device_name + "'");
      }
      if (snap_version == 0 || restored.contains(name)) {
        return fail(LoadStatus::kMalformed,
                    "store entry '" + name + "' has " +
                        (snap_version == 0 ? "version 0"
                                           : "a duplicate device name"));
      }
      auto snap = std::make_shared<SpecSnapshot>();
      snap->device_name = name;
      snap->version = snap_version;
      snap->cfg = std::move(*nested.cfg);
      restored.emplace(name, std::move(snap));
    }
    if (r.remaining() != 0) {
      return fail(LoadStatus::kMalformed,
                  std::to_string(r.remaining()) +
                      " trailing bytes after the last store entry");
    }
  } catch (const sedspec::DecodeError& e) {
    return fail(LoadStatus::kMalformed, e.what());
  }

  std::lock_guard lock(out.mu_);
  if (!out.specs_.empty()) {
    return fail(LoadStatus::kMalformed,
                "load target store is not empty");
  }
  out.specs_ = std::move(restored);
  out.publishes_ = out.specs_.size();
  LoadError ok;
  return ok;
}

}  // namespace sedspec::spec
