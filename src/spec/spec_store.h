// SpecStore: immutable, versioned ES-CFG snapshots for concurrent
// enforcement (the multi-VM deployment of paper Fig. 1 ③).
//
// One ES-Checker traverses its specification on every guest I/O access, so
// a live spec redeploy must never mutate a graph an in-flight traversal is
// walking. The store gives copy-on-write semantics: publish() wraps the new
// ES-CFG in a fresh `shared_ptr<const SpecSnapshot>` and swaps the map
// entry under a mutex; shards pin the snapshot they deployed against
// (EsChecker holds the shared_ptr), so an old version stays alive exactly
// as long as any checker still points into it, and a writer can republish
// at any time without coordinating with the check hot path. Shards observe
// the new version at their next poll and swap checkers *between* rounds.
//
// Snapshots are versioned per device (monotonic from 1) and the whole
// store round-trips through bytes with the same integrity-envelope
// discipline as a single spec (magic / format version / length / CRC32,
// see spec/serial.h): a bit-flipped or truncated store is rejected with a
// structured LoadError, never deployed and never an abort.
#pragma once

#include <map>
#include <memory>
#include <mutex>
#include <span>
#include <string>
#include <vector>

#include "spec/es_cfg.h"
#include "spec/serial.h"

namespace sedspec::spec {

/// One immutable deployment unit. Nothing mutates a snapshot after
/// publish(); concurrent checkers traverse `cfg` lock-free.
struct SpecSnapshot {
  std::string device_name;
  uint64_t version = 0;  // per-device, monotonic from 1
  EsCfg cfg;
};

using SnapshotRef = std::shared_ptr<const SpecSnapshot>;

/// Store envelope format version (independent of the per-spec payload
/// version, which is validated per nested spec).
inline constexpr uint32_t kStoreFormatVersion = 1;

class SpecStore {
 public:
  SpecStore() = default;
  SpecStore(const SpecStore&) = delete;
  SpecStore& operator=(const SpecStore&) = delete;

  /// Copy-on-write redeploy: installs `cfg` as the current snapshot for
  /// `cfg.device_name` with version = previous version + 1 and returns it.
  /// Prior snapshots stay alive while anyone pins them.
  SnapshotRef publish(EsCfg cfg);

  /// Current snapshot for a device (nullptr if none published).
  [[nodiscard]] SnapshotRef current(const std::string& device_name) const;

  /// Current version for a device (0 if none published). Cheaper than
  /// current() for redeploy polling.
  [[nodiscard]] uint64_t version_of(const std::string& device_name) const;

  [[nodiscard]] std::vector<std::string> device_names() const;
  [[nodiscard]] size_t size() const;
  /// Total publish() calls (redeploys included) over the store's lifetime.
  [[nodiscard]] uint64_t publish_count() const;

  /// Serializes every current snapshot (device name, version, spec bytes)
  /// behind a store-level integrity envelope. Nested specs carry their own
  /// envelopes, so corruption is attributed to the right layer on load.
  [[nodiscard]] std::vector<uint8_t> serialize() const;

  /// Restores a serialized store into `out` (which must be empty).
  /// Validates the store envelope, then every nested spec; any defect
  /// yields a LoadError and leaves `out` unchanged. Never throws on
  /// corrupt input.
  [[nodiscard]] static LoadError load(std::span<const uint8_t> bytes,
                                      SpecStore& out);

 private:
  mutable std::mutex mu_;
  std::map<std::string, SnapshotRef> specs_;
  uint64_t publishes_ = 0;
};

}  // namespace sedspec::spec
