#include "spec/builder.h"

#include <algorithm>
#include <map>
#include <optional>

#include "common/log.h"

namespace sedspec::spec {

using sedspec::BlockKind;
using sedspec::SiteDesc;
using sedspec::Stmt;
using sedspec::StmtKind;
using statelog::EntryKind;
using statelog::LogEntry;

EsCfgBuilder::EsCfgBuilder(const sedspec::DeviceProgram* program,
                           cfg::ParamSelection selection,
                           dataflow::RecoveryPlan recovery)
    : program_(program),
      selection_(std::move(selection)),
      recovery_(std::move(recovery)) {
  cfg_.device_name = program->device_name();
  cfg_.params = selection_.param_ids();
}

StmtList EsCfgBuilder::filter_dsod(const StmtList& dsod) {
  StmtList out;
  for (const Stmt& s : dsod) {
    switch (s.kind) {
      case StmtKind::kAssignParam:
        if (!selection_.is_selected(s.param)) {
          continue;  // statement does not affect the device state (§V-B)
        }
        break;
      case StmtKind::kBufStore:
      case StmtKind::kBufFill:
        if (!selection_.is_selected(s.param)) {
          continue;
        }
        break;
      case StmtKind::kAssignLocal:
        break;  // locals are kept: they feed guards and index expressions
    }
    Stmt copy = s;
    copy.value = dataflow::rewrite(copy.value, recovery_);
    copy.index = dataflow::rewrite(copy.index, recovery_);
    copy.count = dataflow::rewrite(copy.count, recovery_);
    out.push_back(std::move(copy));
  }
  return out;
}

EsBlock& EsCfgBuilder::ensure_block(SiteId site) {
  auto it = cfg_.blocks.find(site);
  if (it != cfg_.blocks.end()) {
    return it->second;
  }
  const SiteDesc& desc = program_->site(site);
  EsBlock b;
  b.site = site;
  b.kind = desc.kind;
  b.name = desc.name;
  b.dsod = filter_dsod(desc.dsod);
  if (desc.guard != nullptr) {
    b.guard = dataflow::rewrite(desc.guard, recovery_);
    for (LocalId l : dataflow::referenced_locals(b.guard)) {
      if (recovery_.is_sync(l)) {
        cfg_.sync_locals.insert(l);
      }
    }
  }
  if (desc.cmd_expr != nullptr) {
    b.cmd_expr = dataflow::rewrite(desc.cmd_expr, recovery_);
    for (LocalId l : dataflow::referenced_locals(b.cmd_expr)) {
      if (recovery_.is_sync(l)) {
        cfg_.sync_locals.insert(l);
      }
    }
  }
  b.fp_param = desc.fp_param;
  for (const Stmt& s : b.dsod) {
    for (const ExprRef* e : {&s.value, &s.index, &s.count}) {
      for (LocalId l : dataflow::referenced_locals(*e)) {
        if (recovery_.is_sync(l)) {
          cfg_.sync_locals.insert(l);
        }
      }
    }
  }
  return cfg_.blocks.emplace(site, std::move(b)).first->second;
}

void EsCfgBuilder::connect(const PendingEdge& edge, SiteId to) {
  switch (edge.kind) {
    case PendingEdge::Kind::kNone:
      return;
    case PendingEdge::Kind::kSeq: {
      EsBlock& from = cfg_.blocks.at(edge.from);
      if (from.ends) {
        throw BuildError("block '" + from.name +
                         "' observed both ending a round and continuing");
      }
      if (from.has_succ && from.succ != to) {
        throw BuildError(
            "plain block '" + from.name +
            "' observed with two successors — uninstrumented branching");
      }
      from.has_succ = true;
      from.succ = to;
      return;
    }
    case PendingEdge::Kind::kBranch: {
      EsBlock& from = cfg_.blocks.at(edge.from);
      CondDir& dir = edge.taken ? from.taken : from.not_taken;
      if (dir.observed && dir.ends) {
        throw BuildError("conditional '" + from.name +
                         "' direction both ends and continues");
      }
      if (dir.observed && dir.succ != to) {
        throw BuildError("conditional '" + from.name +
                         "' direction observed with two successors");
      }
      dir.observed = true;
      dir.succ = to;
      return;
    }
    case PendingEdge::Kind::kCmd: {
      CondDir& d = cfg_.blocks.at(edge.from).cmd_dispatch[edge.cmd];
      if (d.observed && d.ends) {
        throw BuildError("command path both ends and continues");
      }
      if (d.observed && d.succ != to) {
        throw BuildError("command decision observed with two successors");
      }
      d.observed = true;
      d.succ = to;
      return;
    }
  }
}

void EsCfgBuilder::finish_round(const PendingEdge& edge) {
  switch (edge.kind) {
    case PendingEdge::Kind::kNone:
      return;
    case PendingEdge::Kind::kSeq: {
      EsBlock& from = cfg_.blocks.at(edge.from);
      if (from.has_succ) {
        throw BuildError("block '" + from.name +
                         "' observed both continuing and ending a round");
      }
      from.ends = true;
      return;
    }
    case PendingEdge::Kind::kBranch: {
      EsBlock& from = cfg_.blocks.at(edge.from);
      CondDir& dir = edge.taken ? from.taken : from.not_taken;
      if (dir.observed && !dir.ends) {
        throw BuildError("conditional '" + from.name +
                         "' direction both continues and ends");
      }
      dir.observed = true;
      dir.ends = true;
      return;
    }
    case PendingEdge::Kind::kCmd: {
      CondDir& d = cfg_.blocks.at(edge.from).cmd_dispatch[edge.cmd];
      if (d.observed && !d.ends) {
        throw BuildError("command path both continues and ends");
      }
      d.observed = true;
      d.ends = true;
      return;
    }
  }
}

void EsCfgBuilder::add_log(const statelog::DeviceStateLog& log) {
  SEDSPEC_REQUIRE(!finalized_);
  // The active command persists across I/O rounds (a device command spans
  // many register accesses), mirroring Algorithm 1's access_vec lifetime.
  std::optional<uint64_t> active_cmd;

  for (const auto& round : log.rounds()) {
    ++cfg_.trained_rounds;
    PendingEdge pending;
    std::map<SiteId, uint64_t> visits;
    bool first_site = true;
    const IoKey key = sedspec::key_of(round.io());

    for (const LogEntry& e : round.entries) {
      switch (e.kind) {
        case EntryKind::kRoundStart:
          break;
        case EntryKind::kSiteEnter: {
          ensure_block(e.site);
          if (first_site) {
            auto [it, inserted] = cfg_.entry_dispatch.emplace(key, e.site);
            if (!inserted && it->second != e.site) {
              throw BuildError("I/O key observed with two entry blocks");
            }
            first_site = false;
          } else {
            connect(pending, e.site);
          }
          pending = PendingEdge{PendingEdge::Kind::kSeq, e.site, false, 0};
          ++visits[e.site];
          if (active_cmd.has_value()) {
            cfg_.commands[*active_cmd].access.insert(e.site);
          }
          break;
        }
        case EntryKind::kBranch:
          pending = PendingEdge{PendingEdge::Kind::kBranch, e.site, e.taken, 0};
          break;
        case EntryKind::kIndirect:
          ensure_block(e.site).fp_targets.insert(e.target);
          break;
        case EntryKind::kCommand: {
          CmdInfo& ci = cfg_.commands[e.cmd];
          ++ci.observed;
          active_cmd = e.cmd;
          ci.access.insert(e.site);
          pending = PendingEdge{PendingEdge::Kind::kCmd, e.site, false, e.cmd};
          break;
        }
        case EntryKind::kCommandEnd:
          active_cmd.reset();
          break;
        case EntryKind::kParamChange:
          break;  // redundant with DSOD; kept in the log for fidelity
        case EntryKind::kRoundEnd:
          finish_round(pending);
          if (first_site) {
            // Round touched no instrumented site: record an "empty" entry.
            cfg_.entry_dispatch.emplace(key, sedspec::kInvalidSite);
          }
          break;
      }
    }
    for (const auto& [site, n] : visits) {
      EsBlock& b = cfg_.blocks.at(site);
      b.max_visits_per_round = std::max(b.max_visits_per_round, n);
    }
  }
}

void EsCfgBuilder::reduce(EsCfg* out) {
  out->blocks_before_reduction = out->blocks.size();

  // 1. Merge conditionals whose two observed directions agree (§V-C: "we
  //    merge the two basic blocks and remove the NBTD").
  for (auto& [site, b] : out->blocks) {
    if (b.kind != BlockKind::kConditional) {
      continue;
    }
    if (!b.taken.observed || !b.not_taken.observed) {
      continue;
    }
    const bool same_end = b.taken.ends && b.not_taken.ends;
    const bool same_succ = !b.taken.ends && !b.not_taken.ends &&
                           b.taken.succ == b.not_taken.succ;
    if (same_end || same_succ) {
      b.merged = true;
      b.ends = same_end;
      b.has_succ = same_succ;
      b.succ = same_succ ? b.taken.succ : sedspec::kInvalidSite;
      ++out->merged_conditionals;
    }
  }

  // 2. Splice out empty plain blocks with a unique successor.
  std::map<SiteId, SiteId> forward;
  for (const auto& [site, b] : out->blocks) {
    if (b.kind == BlockKind::kPlain && b.dsod.empty() && b.has_succ &&
        !b.ends && b.succ != site) {
      forward[site] = b.succ;
    }
  }
  auto resolve = [&](SiteId site) {
    SiteId cur = site;
    // Follow splice chains with a step bound to defend against cycles.
    for (int i = 0; i < 64; ++i) {
      auto it = forward.find(cur);
      if (it == forward.end()) {
        return cur;
      }
      cur = it->second;
    }
    return cur;
  };
  if (!forward.empty()) {
    for (auto& [key, site] : out->entry_dispatch) {
      if (site != sedspec::kInvalidSite) {
        site = resolve(site);
      }
    }
    for (auto& [site, b] : out->blocks) {
      if (b.has_succ) {
        b.succ = resolve(b.succ);
      }
      if (b.taken.observed && !b.taken.ends) {
        b.taken.succ = resolve(b.taken.succ);
      }
      if (b.not_taken.observed && !b.not_taken.ends) {
        b.not_taken.succ = resolve(b.not_taken.succ);
      }
    }
    for (auto& [site, b] : out->blocks) {
      for (auto& [cmd, d] : b.cmd_dispatch) {
        if (d.observed && !d.ends) {
          d.succ = resolve(d.succ);
        }
      }
    }
    for (auto& [cmd, ci] : out->commands) {
      for (auto it = ci.access.begin(); it != ci.access.end();) {
        if (forward.contains(*it)) {
          it = ci.access.erase(it);
        } else {
          ++it;
        }
      }
    }
    for (const auto& entry : forward) {
      out->blocks.erase(entry.first);
      ++out->spliced_blocks;
    }
  }
}

EsCfg EsCfgBuilder::finalize() {
  SEDSPEC_REQUIRE(!finalized_);
  finalized_ = true;
  reduce(&cfg_);

  // Validation: every referenced successor must exist.
  auto check_ref = [&](SiteId site, const char* what) {
    if (site != sedspec::kInvalidSite && !cfg_.blocks.contains(site)) {
      throw BuildError(std::string("dangling ") + what + " reference");
    }
  };
  for (const auto& [key, site] : cfg_.entry_dispatch) {
    check_ref(site, "entry");
  }
  for (const auto& [site, b] : cfg_.blocks) {
    if (b.has_succ) check_ref(b.succ, "successor");
    if (b.taken.observed && !b.taken.ends) check_ref(b.taken.succ, "taken");
    if (b.not_taken.observed && !b.not_taken.ends) {
      check_ref(b.not_taken.succ, "not-taken");
    }
    for (const auto& [cmd, d] : b.cmd_dispatch) {
      if (d.observed && !d.ends) check_ref(d.succ, "command successor");
    }
  }

  log_info("spec") << cfg_.device_name << ": ES-CFG with "
                   << cfg_.blocks.size() << " blocks ("
                   << cfg_.blocks_before_reduction << " before reduction), "
                   << cfg_.commands.size() << " commands, "
                   << cfg_.sync_locals.size() << " sync locals, "
                   << cfg_.trained_rounds << " rounds";
  return std::move(cfg_);
}

EsCfg EsCfgBuilder::build(const sedspec::DeviceProgram& program,
                          const cfg::ParamSelection& selection,
                          const dataflow::RecoveryPlan& recovery,
                          const statelog::DeviceStateLog& log) {
  EsCfgBuilder builder(&program, selection, recovery);
  builder.add_log(log);
  return builder.finalize();
}

}  // namespace sedspec::spec
