// Shared formatting helpers for the paper-reproduction benchmark binaries.
#pragma once

#include <cstdio>
#include <string>

namespace bench_report {

inline void title(const std::string& text) {
  std::printf("\n=== %s ===\n\n", text.c_str());
}

inline void rule(int width = 78) {
  for (int i = 0; i < width; ++i) {
    std::putchar('-');
  }
  std::putchar('\n');
}

inline const char* mark(bool v) { return v ? "yes" : "-"; }

inline std::string human_size(size_t bytes) {
  char buf[32];
  if (bytes >= (1u << 20)) {
    std::snprintf(buf, sizeof(buf), "%zuM", bytes >> 20);
  } else if (bytes >= (1u << 10)) {
    std::snprintf(buf, sizeof(buf), "%zuK", bytes >> 10);
  } else {
    std::snprintf(buf, sizeof(buf), "%zu", bytes);
  }
  return buf;
}

}  // namespace bench_report
