// Fault-injection campaign driver.
//
// Runs a seed-driven sweep of faults across all four injection layers and
// every device workload, driving benign guest I/O after each fault and
// classifying the outcome from the checker's failure-domain counters. The
// acceptance bar for the robustness layer:
//   - zero faults escape (no exception ever crosses the proxy hooks, and
//     the bus backstop counter stays at zero);
//   - every fault is accounted for: rejected at load, contained by the
//     failure domain (fail-closed or fail-open), surfaced as an ordinary
//     violation, or absorbed with protection still armed.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "checker/checker.h"
#include "faultinject/faultinject.h"

namespace sedspec::faultinject {

struct CampaignConfig {
  uint64_t seed = 0xf00d;
  checker::FailurePolicy policy = checker::FailurePolicy::kFailClosed;
  /// Devices to sweep; empty = all of guest::workload_names().
  std::vector<std::string> devices;

  size_t spec_faults_per_device = 60;
  size_t trace_faults_per_device = 24;
  size_t dma_faults_per_device = 40;     // DMA-mastering devices only
  size_t checker_faults_per_device = 40;

  /// Benign operations driven through the bus after each runtime fault.
  int ops_per_fault = 4;
  /// Low traversal watchdog so runaway faults resolve quickly.
  uint64_t watchdog_steps = 1u << 14;
};

struct LayerOutcomes {
  uint64_t injected = 0;
  uint64_t rejected_at_load = 0;  // spec/trace: defect rejected before deploy
  uint64_t contained = 0;         // resolved at the containment boundary...
  uint64_t fail_closed = 0;       //   ... by quarantine/block
  uint64_t fail_open = 0;         //   ... by degraded passthrough
  uint64_t flagged = 0;           // surfaced as an ordinary violation
  uint64_t absorbed = 0;          // no observable effect; protection armed
  uint64_t escaped = 0;           // exception crossed the harness — must be 0

  void add(const LayerOutcomes& other);
  /// injected == rejected_at_load + contained + flagged + absorbed + escaped
  [[nodiscard]] bool accounted() const;
};

struct CampaignResult {
  LayerOutcomes by_layer[kLayerCount];
  /// Spec-layer rejection reasons, indexed by spec::LoadStatus.
  uint64_t spec_rejections_by_status[8] = {};
  /// Bus backstop hits across all devices — must stay 0 (the checker is
  /// expected to contain its own faults).
  uint64_t proxy_faults = 0;
  uint64_t devices_run = 0;

  [[nodiscard]] LayerOutcomes total() const;
  [[nodiscard]] std::string describe() const;
};

[[nodiscard]] CampaignResult run_campaign(const CampaignConfig& config = {});

}  // namespace sedspec::faultinject
