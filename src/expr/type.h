// Integer value types.
//
// Every expression carries a declared C integer type, mirroring the LLVM IR
// metadata the paper uses for the parameter check ("using LLVM IR metadata
// to denote the parameter type", §VI-A). Values are stored as raw uint64_t
// bit patterns; signed values use two's complement.
#pragma once

#include <cstdint>
#include <string>

#include "common/assert.h"

namespace sedspec {

enum class IntType : uint8_t {
  kU8,
  kU16,
  kU32,
  kU64,
  kI8,
  kI16,
  kI32,
  kI64,
};

[[nodiscard]] constexpr bool is_signed(IntType t) {
  return t >= IntType::kI8;
}

[[nodiscard]] constexpr unsigned bits_of(IntType t) {
  switch (t) {
    case IntType::kU8:
    case IntType::kI8:
      return 8;
    case IntType::kU16:
    case IntType::kI16:
      return 16;
    case IntType::kU32:
    case IntType::kI32:
      return 32;
    case IntType::kU64:
    case IntType::kI64:
      return 64;
  }
  return 64;
}

/// Truncates a raw 64-bit pattern to the width of `t` (wrap semantics).
[[nodiscard]] constexpr uint64_t truncate_to(IntType t, uint64_t raw) {
  const unsigned b = bits_of(t);
  if (b == 64) return raw;
  return raw & ((uint64_t{1} << b) - 1);
}

/// Interprets a raw (already truncated) pattern as the mathematical value of
/// type `t`, widened to a signed 128-bit integer.
[[nodiscard]] constexpr __int128 interpret(IntType t, uint64_t raw) {
  const uint64_t v = truncate_to(t, raw);
  if (!is_signed(t)) return static_cast<__int128>(v);
  const unsigned b = bits_of(t);
  if (b == 64) return static_cast<__int128>(static_cast<int64_t>(v));
  const uint64_t sign_bit = uint64_t{1} << (b - 1);
  if (v & sign_bit) {
    return static_cast<__int128>(static_cast<int64_t>(v - (sign_bit << 1)));
  }
  return static_cast<__int128>(v);
}

/// True if the mathematical value `v` is representable in type `t`.
[[nodiscard]] constexpr bool representable(IntType t, __int128 v) {
  const unsigned b = bits_of(t);
  if (is_signed(t)) {
    const __int128 lo = -(static_cast<__int128>(1) << (b - 1));
    const __int128 hi = (static_cast<__int128>(1) << (b - 1)) - 1;
    return v >= lo && v <= hi;
  }
  const __int128 hi = (static_cast<__int128>(1) << b) - 1;
  return v >= 0 && v <= hi;
}

/// Wraps the mathematical value `v` into the raw bit pattern of type `t`.
[[nodiscard]] constexpr uint64_t wrap_to(IntType t, __int128 v) {
  return truncate_to(t, static_cast<uint64_t>(static_cast<unsigned __int128>(v)));
}

[[nodiscard]] std::string type_name(IntType t);

/// Type of an unsigned field with `size` bytes (1, 2, 4 or 8).
[[nodiscard]] IntType unsigned_type_for_size(uint32_t size);

}  // namespace sedspec
