#include "expr/eval.h"

#include <sstream>

#include "common/assert.h"

namespace sedspec {

std::string EvalDiag::describe() const {
  std::ostringstream out;
  switch (kind) {
    case Kind::kNone:
      out << "no anomaly";
      break;
    case Kind::kIntegerOverflow:
      out << "integer overflow in " << type_name(type);
      break;
    case Kind::kBufferOob:
      out << "buffer " << (oob_is_write ? "write" : "read")
          << " out of bounds: field p" << buffer << " index " << index;
      break;
    case Kind::kDivByZero:
      out << "division by zero";
      break;
    case Kind::kShiftOutOfRange:
      out << "shift amount out of range for " << type_name(type);
      break;
    case Kind::kMissingLocal:
      out << "unresolved local variable local" << local;
      break;
  }
  if (!note.empty()) {
    out << " (at: " << note << ")";
  }
  return out.str();
}

namespace {

// Raw 64-bit two's-complement pattern of an operand's interpreted value.
uint64_t pattern_of(IntType t, uint64_t raw) {
  return static_cast<uint64_t>(
      static_cast<unsigned __int128>(interpret(t, raw)));
}

uint64_t eval_binary(const Expr& e, EvalCtx& ctx) {
  const uint64_t lraw = eval_expr(*e.lhs, ctx);
  const uint64_t rraw = eval_expr(*e.rhs, ctx);
  const __int128 lv = interpret(e.lhs->type, lraw);
  const __int128 rv = interpret(e.rhs->type, rraw);

  auto arith = [&](/* true mathematical result */ __int128 truth) {
    if (ctx.checked && ctx.diag != nullptr && !representable(e.type, truth)) {
      ctx.diag->record(EvalDiag::Kind::kIntegerOverflow);
      if (ctx.diag->kind == EvalDiag::Kind::kIntegerOverflow &&
          ctx.diag->note.empty()) {
        ctx.diag->type = e.type;
      }
    }
    return wrap_to(e.type, truth);
  };

  switch (e.bin_op) {
    case BinaryOp::kAdd:
      return arith(lv + rv);
    case BinaryOp::kSub:
      return arith(lv - rv);
    case BinaryOp::kMul:
      return arith(lv * rv);
    case BinaryOp::kDiv:
      if (rv == 0) {
        if (ctx.checked && ctx.diag != nullptr) {
          ctx.diag->record(EvalDiag::Kind::kDivByZero);
        }
        return 0;
      }
      return arith(lv / rv);
    case BinaryOp::kMod:
      if (rv == 0) {
        if (ctx.checked && ctx.diag != nullptr) {
          ctx.diag->record(EvalDiag::Kind::kDivByZero);
        }
        return 0;
      }
      return arith(lv % rv);
    case BinaryOp::kAnd:
      return truncate_to(e.type, pattern_of(e.lhs->type, lraw) &
                                     pattern_of(e.rhs->type, rraw));
    case BinaryOp::kOr:
      return truncate_to(e.type, pattern_of(e.lhs->type, lraw) |
                                     pattern_of(e.rhs->type, rraw));
    case BinaryOp::kXor:
      return truncate_to(e.type, pattern_of(e.lhs->type, lraw) ^
                                     pattern_of(e.rhs->type, rraw));
    case BinaryOp::kShl: {
      const uint64_t amount = static_cast<uint64_t>(rv) & 63;
      if (ctx.checked && ctx.diag != nullptr &&
          (rv < 0 || rv >= bits_of(e.type))) {
        ctx.diag->record(EvalDiag::Kind::kShiftOutOfRange);
        ctx.diag->type = e.type;
      }
      return arith(lv * (static_cast<__int128>(1) << amount));
    }
    case BinaryOp::kShr: {
      const uint64_t amount = static_cast<uint64_t>(rv) & 63;
      if (ctx.checked && ctx.diag != nullptr &&
          (rv < 0 || rv >= bits_of(e.type))) {
        ctx.diag->record(EvalDiag::Kind::kShiftOutOfRange);
        ctx.diag->type = e.type;
      }
      // Arithmetic shift for signed lhs, logical for unsigned.
      return wrap_to(e.type, lv >> amount);
    }
    case BinaryOp::kEq:
      return lv == rv ? 1 : 0;
    case BinaryOp::kNe:
      return lv != rv ? 1 : 0;
    case BinaryOp::kLt:
      return lv < rv ? 1 : 0;
    case BinaryOp::kLe:
      return lv <= rv ? 1 : 0;
    case BinaryOp::kGt:
      return lv > rv ? 1 : 0;
    case BinaryOp::kGe:
      return lv >= rv ? 1 : 0;
    case BinaryOp::kLAnd:
      return (lv != 0 && rv != 0) ? 1 : 0;
    case BinaryOp::kLOr:
      return (lv != 0 || rv != 0) ? 1 : 0;
  }
  return 0;
}

}  // namespace

uint64_t eval_expr(const Expr& e, EvalCtx& ctx) {
  SEDSPEC_REQUIRE(ctx.state != nullptr);
  switch (e.kind) {
    case ExprKind::kConst:
      return e.const_value;
    case ExprKind::kParam:
      return truncate_to(e.type, ctx.state->param(e.param));
    case ExprKind::kLocal: {
      uint64_t v = 0;
      if (!ctx.state->local(e.local, &v)) {
        if (ctx.checked && ctx.diag != nullptr) {
          ctx.diag->record(EvalDiag::Kind::kMissingLocal);
          ctx.diag->local = e.local;
        } else {
          SEDSPEC_REQUIRE_MSG(false, "device read of unset local variable " +
                                         std::to_string(e.local));
        }
        return 0;
      }
      return truncate_to(e.type, v);
    }
    case ExprKind::kIoField: {
      SEDSPEC_REQUIRE_MSG(ctx.io != nullptr, "expression reads io outside round");
      switch (e.io_field) {
        case IoField::kAddr:
          return truncate_to(e.type, ctx.io->addr);
        case IoField::kValue:
          return truncate_to(e.type, ctx.io->value);
        case IoField::kSize:
          return truncate_to(e.type, ctx.io->size);
        case IoField::kIsWrite:
          return ctx.io->is_write ? 1 : 0;
        case IoField::kSpace:
          return static_cast<uint64_t>(ctx.io->space);
      }
      return 0;
    }
    case ExprKind::kBufLoad: {
      const uint64_t idx = eval_expr(*e.lhs, ctx);
      return truncate_to(e.type,
                         ctx.state->buf_load(e.param, idx, ctx.diag));
    }
    case ExprKind::kUnary: {
      const uint64_t raw = eval_expr(*e.lhs, ctx);
      const __int128 v = interpret(e.lhs->type, raw);
      switch (e.un_op) {
        case UnaryOp::kNeg: {
          const __int128 truth = -v;
          if (ctx.checked && ctx.diag != nullptr &&
              !representable(e.type, truth)) {
            ctx.diag->record(EvalDiag::Kind::kIntegerOverflow);
            ctx.diag->type = e.type;
          }
          return wrap_to(e.type, truth);
        }
        case UnaryOp::kBitNot:
          return truncate_to(e.type, ~pattern_of(e.lhs->type, raw));
        case UnaryOp::kLogicalNot:
          return v == 0 ? 1 : 0;
      }
      return 0;
    }
    case ExprKind::kBinary:
      return eval_binary(e, ctx);
    case ExprKind::kCast:
      // Casts wrap silently (deliberate register-width truncation is benign;
      // see eval.h). Signed narrowing follows two's-complement wrap.
      return truncate_to(e.type, pattern_of(e.lhs->type,
                                            eval_expr(*e.lhs, ctx)));
  }
  return 0;
}

void exec_stmt(const Stmt& s, EvalCtx& ctx) {
  const bool note_diag = ctx.checked && ctx.diag != nullptr;
  const bool had = note_diag && ctx.diag->any();
  switch (s.kind) {
    case StmtKind::kAssignParam: {
      const uint64_t v = eval_expr(*s.value, ctx);
      ctx.state->set_param(s.param, v);
      break;
    }
    case StmtKind::kAssignLocal: {
      const uint64_t v = eval_expr(*s.value, ctx);
      ctx.state->set_local(s.local, v);
      break;
    }
    case StmtKind::kBufStore: {
      const uint64_t idx = eval_expr(*s.index, ctx);
      const uint64_t v = eval_expr(*s.value, ctx);
      ctx.state->buf_store(s.param, idx, v, ctx.diag);
      break;
    }
    case StmtKind::kBufFill: {
      const uint64_t idx = eval_expr(*s.index, ctx);
      const uint64_t count = eval_expr(*s.count, ctx);
      ctx.state->buf_fill(s.param, idx, count, ctx.diag);
      break;
    }
  }
  // Attribute a freshly raised anomaly to this statement's annotation.
  if (note_diag && !had && ctx.diag->any() && ctx.diag->note.empty()) {
    ctx.diag->note = s.note;
  }
}

}  // namespace sedspec
