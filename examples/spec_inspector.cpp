// spec_inspector: look inside an execution specification.
//
// Trains a spec for a chosen device (default: the FDC) and dumps every
// artifact of the pipeline: the ITC-CFG summary, the selected device-state
// parameters with the rule that admitted each, a slice of the device-state-
// change log, the full ES-CFG (blocks, DSOD, NBTD, command access table,
// sync points), and the serialized size.
//
// Usage: spec_inspector [fdc|usb-ehci|pcnet|sdhci|scsi-esp]
#include <cstdio>
#include <string>

#include "cfg/analyzer.h"
#include "common/log.h"
#include "guest/workload.h"
#include "sedspec/pipeline.h"
#include "spec/builder.h"
#include "spec/serial.h"
#include "statelog/statelog.h"

using namespace sedspec;

int main(int argc, char** argv) {
  set_log_level(LogLevel::kOff);
  const std::string device = argc > 1 ? argv[1] : "fdc";
  auto wl = guest::make_workload(device);

  std::printf("=== phase 1: data collection (%s) ===\n\n", device.c_str());
  const pipeline::CollectionResult collected =
      pipeline::collect(wl->device(), [&] { wl->training(); });
  std::printf("IPT-style trace: %zu packet bytes -> ITC-CFG with %zu nodes, "
              "%zu edges, %llu windows\n",
              collected.trace_bytes, collected.itc_cfg.node_count(),
              collected.itc_cfg.edge_count(),
              (unsigned long long)collected.itc_cfg.window_count());

  const auto& layout = wl->device().program().layout();
  std::printf("\ndevice state parameters (control structure %s):\n",
              layout.struct_name().c_str());
  for (const auto& sel : collected.selection.params) {
    std::printf("  %-14s %-10s  [%s]\n",
                layout.field(sel.param).name.c_str(),
                field_kind_name(layout.field(sel.param).kind).c_str(),
                cfg::selection_rule_name(sel.rule).c_str());
  }
  std::printf("\nsync points from data-dependency recovery: %zu inlined "
              "locals, %zu sync locals\n",
              collected.recovery.inline_defs.size(),
              collected.recovery.sync_points.size());

  std::printf("\ndevice-state-change log: %zu rounds; first round:\n",
              collected.log.round_count());
  const auto rounds = collected.log.rounds();
  if (!rounds.empty()) {
    statelog::DeviceStateLog first;
    for (const auto& e : rounds.front().entries) {
      first.append(e);
    }
    std::printf("%s", statelog::to_text(first, wl->device().program()).c_str());
  }

  std::printf("\n=== phase 2: specification construction ===\n\n");
  const spec::EsCfg cfg = pipeline::construct(wl->device(), collected);
  std::printf("%s", cfg.to_text(wl->device().program()).c_str());
  std::printf("\nserialized specification: %zu bytes\n",
              spec::serialize(cfg).size());
  return 0;
}
