#include "checker/report_queue.h"

#include <algorithm>
#include <bit>

#include "common/log.h"

namespace sedspec::checker {

ReportQueue::ReportQueue(size_t capacity) {
  capacity = std::bit_ceil(std::max<size_t>(capacity, 2));
  SEDSPEC_REQUIRE_MSG(capacity <= (size_t{1} << 31),
                      "report queue capacity is implausibly large");
  cells_ = std::make_unique<Cell[]>(capacity);
  mask_ = capacity - 1;
  for (size_t i = 0; i < capacity; ++i) {
    cells_[i].seq.store(i, std::memory_order_relaxed);
  }
}

obs::Counter& ReportQueue::drop_counter_for(uint32_t shard) {
  std::atomic<obs::Counter*>& slot = shard < kDropCounterSlots
                                         ? drop_counters_[shard]
                                         : drop_counter_overflow_;
  obs::Counter* c = slot.load(std::memory_order_acquire);
  if (c == nullptr) {
    // Racing first-drop resolvers all get the same registry handle (the
    // registry's lookup is idempotent), so last-writer-wins is benign.
    const std::string label =
        shard < kDropCounterSlots
            ? obs::label({{"shard", std::to_string(shard)}})
            : obs::label({{"shard", "overflow"}});
    c = &obs::metrics().counter("report_queue_dropped_total", label);
    slot.store(c, std::memory_order_release);
  }
  return *c;
}

bool ReportQueue::try_push(const Report& r) {
  size_t pos = enqueue_.load(std::memory_order_relaxed);
  for (;;) {
    Cell& cell = cells_[pos & mask_];
    const size_t seq = cell.seq.load(std::memory_order_acquire);
    const intptr_t dif =
        static_cast<intptr_t>(seq) - static_cast<intptr_t>(pos);
    if (dif == 0) {
      // Slot is free for generation `pos`: claim it.
      if (enqueue_.compare_exchange_weak(pos, pos + 1,
                                         std::memory_order_relaxed)) {
        cell.item = r;
        cell.seq.store(pos + 1, std::memory_order_release);
        pushed_.fetch_add(1, std::memory_order_relaxed);
        return true;
      }
      // Lost the claim race; `pos` was refreshed by the CAS, retry.
    } else if (dif < 0) {
      // Slot still holds the previous generation's item: queue is full.
      dropped_.fetch_add(1, std::memory_order_relaxed);
      drop_counter_for(r.shard).inc();
      return false;
    } else {
      pos = enqueue_.load(std::memory_order_relaxed);
    }
  }
}

bool ReportQueue::try_pop(Report& out) {
  size_t pos = dequeue_.load(std::memory_order_relaxed);
  for (;;) {
    Cell& cell = cells_[pos & mask_];
    const size_t seq = cell.seq.load(std::memory_order_acquire);
    const intptr_t dif =
        static_cast<intptr_t>(seq) - static_cast<intptr_t>(pos + 1);
    if (dif == 0) {
      if (dequeue_.compare_exchange_weak(pos, pos + 1,
                                         std::memory_order_relaxed)) {
        out = cell.item;
        // Recycle the slot for the producer one full lap ahead.
        cell.seq.store(pos + mask_ + 1, std::memory_order_release);
        popped_.fetch_add(1, std::memory_order_relaxed);
        return true;
      }
    } else if (dif < 0) {
      return false;  // empty
    } else {
      pos = dequeue_.load(std::memory_order_relaxed);
    }
  }
}

size_t ReportQueue::drain(std::vector<Report>& out, size_t max) {
  size_t n = 0;
  Report r;
  while (n < max && try_pop(r)) {
    out.push_back(r);
    ++n;
  }
  return n;
}

size_t ReportQueue::size_approx() const {
  const size_t e = enqueue_.load(std::memory_order_relaxed);
  const size_t d = dequeue_.load(std::memory_order_relaxed);
  return e >= d ? e - d : 0;
}

}  // namespace sedspec::checker
