// Memory footprint probe: samples process RSS and allocator heap usage
// into gauges so the time-series layer can watch for drift.
//
// Linux-only sources (/proc/self/statm for RSS, mallinfo2 for in-use heap
// bytes), compiled out elsewhere — sample() then reports zeros rather than
// failing, so the soak harness stays portable. No dependencies beyond
// glibc.
#pragma once

#include <cstdint>

#include "obs/metrics.h"

namespace sedspec::obs {

class MemoryProbe {
 public:
  /// Gauges are registered in `registry` as `rss_bytes` and `heap_bytes`
  /// (no labels): process-wide values, one probe per process.
  explicit MemoryProbe(MetricsRegistry& registry);

  /// Reads the current footprint and publishes it to the gauges. Cheap
  /// (one /proc read + one mallinfo call); call once per window.
  void sample();

  [[nodiscard]] uint64_t rss_bytes() const { return rss_bytes_; }
  [[nodiscard]] uint64_t heap_bytes() const { return heap_bytes_; }
  /// Largest RSS observed across samples.
  [[nodiscard]] uint64_t rss_peak_bytes() const { return rss_peak_bytes_; }

 private:
  Gauge& rss_gauge_;
  Gauge& heap_gauge_;
  uint64_t rss_bytes_ = 0;
  uint64_t heap_bytes_ = 0;
  uint64_t rss_peak_bytes_ = 0;
};

}  // namespace sedspec::obs
