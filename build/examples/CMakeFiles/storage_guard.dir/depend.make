# Empty dependencies file for storage_guard.
# This may be replaced when dependencies are built.
