#include "vdev/memory.h"

#include <algorithm>
#include <cstring>

namespace sedspec {

bool GuestMemory::read(uint64_t addr, std::span<uint8_t> out) const {
  if (addr > ram_.size() || out.size() > ram_.size() - addr) {
    std::fill(out.begin(), out.end(), 0);
    ++faults_;
    return false;
  }
  std::memcpy(out.data(), ram_.data() + addr, out.size());
  return true;
}

bool GuestMemory::write(uint64_t addr, std::span<const uint8_t> data) {
  if (addr > ram_.size() || data.size() > ram_.size() - addr) {
    ++faults_;
    return false;
  }
  std::memcpy(ram_.data() + addr, data.data(), data.size());
  return true;
}

void GuestMemory::fill(uint64_t addr, size_t len, uint8_t byte) {
  if (addr > ram_.size() || len > ram_.size() - addr) {
    ++faults_;
    return;
  }
  std::memset(ram_.data() + addr, byte, len);
}

}  // namespace sedspec
