// Observability layer: histogram math, registry labeling, the event ring,
// exporter round-trips through the JSON parser, and the checker
// integration (a blocked exploit must surface as a violation event with
// the right strategy label).
#include <gtest/gtest.h>

#include <atomic>
#include <string>
#include <thread>
#include <vector>

#include "devices/fdc.h"
#include "guest/fdc_driver.h"
#include "obs/json.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "sedspec/pipeline.h"

namespace sedspec {
namespace {

using devices::FdcDevice;

/// The tracer and timing switch are process globals; every test that
/// installs one must restore the default so the rest of the suite (and the
/// checker tests running in this binary) see the stock configuration.
struct ObsGlobalGuard {
  ~ObsGlobalGuard() {
    obs::set_tracer(nullptr);
    obs::set_timing_enabled(false);
  }
};

TEST(ObsHistogram, BucketBoundariesAreLog2) {
  // Bucket 0 holds only 0; bucket i (i >= 1) holds [2^(i-1), 2^i - 1].
  EXPECT_EQ(obs::Histogram::bucket_of(0), 0u);
  EXPECT_EQ(obs::Histogram::bucket_of(1), 1u);
  EXPECT_EQ(obs::Histogram::bucket_of(2), 2u);
  EXPECT_EQ(obs::Histogram::bucket_of(3), 2u);
  EXPECT_EQ(obs::Histogram::bucket_of(4), 3u);
  EXPECT_EQ(obs::Histogram::bucket_of(255), 8u);
  EXPECT_EQ(obs::Histogram::bucket_of(256), 9u);
  EXPECT_EQ(obs::Histogram::bucket_of(~uint64_t{0}), 64u);

  EXPECT_EQ(obs::Histogram::bucket_upper(0), 0u);
  EXPECT_EQ(obs::Histogram::bucket_upper(1), 1u);
  EXPECT_EQ(obs::Histogram::bucket_upper(8), 255u);
  EXPECT_EQ(obs::Histogram::bucket_upper(64), ~uint64_t{0});

  obs::Histogram h;
  h.record(0);
  h.record(1);
  h.record(3);
  h.record(4);
  EXPECT_EQ(h.bucket_count(0), 1u);
  EXPECT_EQ(h.bucket_count(1), 1u);
  EXPECT_EQ(h.bucket_count(2), 1u);
  EXPECT_EQ(h.bucket_count(3), 1u);
}

TEST(ObsHistogram, PercentilesResolveToBucketEdgeClampedToMax) {
  obs::Histogram h;
  EXPECT_EQ(h.percentile(0.5), 0u);  // empty
  EXPECT_EQ(h.count(), 0u);

  for (uint64_t v = 1; v <= 8; ++v) {
    h.record(v);
  }
  EXPECT_EQ(h.count(), 8u);
  EXPECT_EQ(h.sum(), 36u);
  EXPECT_EQ(h.max(), 8u);
  EXPECT_DOUBLE_EQ(h.mean(), 4.5);
  // Cumulative counts per bucket: b1 (={1}) 1, b2 ({2,3}) 3, b3 ({4..7})
  // 7, b4 ({8..15}) 8. p50 targets rank 4 -> bucket 3, upper edge 7.
  EXPECT_EQ(h.p50(), 7u);
  // p99 targets rank 8 -> bucket 4, upper edge 15, clamped to max = 8.
  EXPECT_EQ(h.p99(), 8u);
  EXPECT_LE(h.p50(), h.p90());
  EXPECT_LE(h.p90(), h.p99());
}

TEST(ObsRegistry, LabelsDistinguishSeriesAndHandlesAreStable) {
  obs::MetricsRegistry reg;
  const std::string fdc = obs::label({{"device", "fdc"}});
  const std::string esp = obs::label({{"device", "scsi-esp"}});
  EXPECT_EQ(fdc, "device=\"fdc\"");
  EXPECT_EQ(obs::label({{"a", "1"}, {"b", "2"}}), "a=\"1\",b=\"2\"");

  obs::Counter& c1 = reg.counter("hits", fdc);
  obs::Counter& c2 = reg.counter("hits", fdc);
  obs::Counter& c3 = reg.counter("hits", esp);
  EXPECT_EQ(&c1, &c2);  // lookup-or-create returns the same handle
  EXPECT_NE(&c1, &c3);  // different labels, different series
  c1.inc(5);
  c3.inc(1);
  EXPECT_EQ(reg.find_counter("hits", fdc)->value(), 5u);
  EXPECT_EQ(reg.find_counter("hits", esp)->value(), 1u);
  EXPECT_EQ(reg.find_counter("hits", "device=\"nope\""), nullptr);
  EXPECT_EQ(reg.find_histogram("hits", fdc), nullptr);

  reg.histogram("lat", fdc).record(7);
  const std::string prom = reg.to_prometheus();
  EXPECT_NE(prom.find("sedspec_hits{device=\"fdc\"} 5"), std::string::npos);
  EXPECT_NE(prom.find("# TYPE sedspec_lat summary"), std::string::npos);

  // The JSON snapshot parses back with the same values.
  const obs::JsonValue snap = obs::json_parse(reg.to_json());
  const obs::JsonValue* counters = snap.find("counters");
  ASSERT_NE(counters, nullptr);
  ASSERT_TRUE(counters->is_array());
  ASSERT_EQ(counters->array.size(), 2u);
  EXPECT_EQ(counters->array[0].find("name")->str, "hits");
  EXPECT_EQ(counters->array[0].find("labels")->str, "device=\"fdc\"");
  EXPECT_DOUBLE_EQ(counters->array[0].find("value")->number, 5.0);
}

TEST(ObsTracer, RingWrapsOldestFirstAndCountsDrops) {
  obs::EventTracer tracer(8);
  EXPECT_EQ(tracer.capacity(), 8u);
  for (uint64_t i = 0; i < 20; ++i) {
    tracer.record(obs::EventType::kDmaXfer, "dma_xfer", "dma", "to_guest",
                  /*a=*/i, /*b=*/0);
  }
  EXPECT_EQ(tracer.recorded(), 20u);
  EXPECT_EQ(tracer.size(), 8u);
  EXPECT_EQ(tracer.dropped(), 12u);
  const std::vector<obs::TraceEvent> events = tracer.snapshot();
  ASSERT_EQ(events.size(), 8u);
  for (size_t i = 0; i < events.size(); ++i) {
    EXPECT_EQ(events[i].a, 12 + i);  // oldest retained first
    EXPECT_EQ(tracer.string_at(events[i].name), "dma_xfer");
  }
  tracer.clear();
  EXPECT_EQ(tracer.size(), 0u);
  EXPECT_EQ(tracer.dropped(), 0u);
}

TEST(ObsHistogram, MergeSumsBucketsAndRaisesMax) {
  obs::Histogram a;
  obs::Histogram b;
  a.record(1);
  a.record(100);
  b.record(100);
  b.record(7000);
  a.merge(b);
  EXPECT_EQ(a.count(), 4u);
  EXPECT_EQ(a.sum(), 1u + 100 + 100 + 7000);
  EXPECT_EQ(a.max(), 7000u);
  EXPECT_EQ(a.bucket_count(obs::Histogram::bucket_of(100)), 2u);
  // The source histogram is untouched.
  EXPECT_EQ(b.count(), 2u);
}

// Concurrency smoke for the relaxed-atomic ring: four writers hammer a
// small ring (forcing wraps) while a reader keeps snapshotting. The
// assertions are about accounting (recorded == kept + dropped, every
// retained event is one that was written); under the TSan preset this is
// also the tracer's data-race gate.
TEST(ObsTracer, ConcurrentRecordAndSnapshotKeepAccountingCoherent) {
  obs::EventTracer tracer(64);
  constexpr int kWriters = 4;
  constexpr uint64_t kPerWriter = 10000;

  std::atomic<bool> stop_reader{false};
  std::thread reader([&] {
    while (!stop_reader.load(std::memory_order_acquire)) {
      const std::vector<obs::TraceEvent> events = tracer.snapshot();
      for (const obs::TraceEvent& ev : events) {
        // Interned ids resolve to the strings some writer recorded.
        const std::string name = tracer.string_at(ev.name);
        EXPECT_TRUE(name.empty() || name == "dma_xfer");
      }
    }
  });

  std::vector<std::thread> writers;
  for (int w = 0; w < kWriters; ++w) {
    writers.emplace_back([&, w] {
      for (uint64_t i = 0; i < kPerWriter; ++i) {
        tracer.record(obs::EventType::kDmaXfer, "dma_xfer", "dma",
                      "to_guest", /*a=*/static_cast<uint64_t>(w), /*b=*/i);
      }
    });
  }
  for (auto& t : writers) {
    t.join();
  }
  stop_reader.store(true, std::memory_order_release);
  reader.join();

  EXPECT_EQ(tracer.recorded(), kWriters * kPerWriter);
  EXPECT_EQ(tracer.size(), tracer.capacity());
  EXPECT_EQ(tracer.dropped(), tracer.recorded() - tracer.capacity());
  const std::vector<obs::TraceEvent> events = tracer.snapshot();
  ASSERT_EQ(events.size(), tracer.capacity());
  for (const obs::TraceEvent& ev : events) {
    EXPECT_LT(ev.a, static_cast<uint64_t>(kWriters));
    EXPECT_LT(ev.b, kPerWriter);
  }
}

TEST(ObsTracer, ChromeExportIsWellFormedJson) {
  obs::EventTracer tracer(64);
  tracer.begin_phase("trace_pass", "fdc");
  tracer.record(obs::EventType::kViolation, "violation", "fdc",
                "parameter check", /*a=*/3, /*b=*/0);
  tracer.end_phase("trace_pass", "fdc");

  const obs::JsonValue doc = obs::json_parse(tracer.to_chrome_json());
  const obs::JsonValue* events = doc.find("traceEvents");
  ASSERT_NE(events, nullptr);
  ASSERT_TRUE(events->is_array());
  ASSERT_EQ(events->array.size(), 3u);
  EXPECT_EQ(events->array[0].find("ph")->str, "B");
  EXPECT_EQ(events->array[2].find("ph")->str, "E");
  const obs::JsonValue& violation = events->array[1];
  EXPECT_EQ(violation.find("name")->str, "violation");
  EXPECT_EQ(violation.find("cat")->str, "fdc");
  const obs::JsonValue* args = violation.find("args");
  ASSERT_NE(args, nullptr);
  EXPECT_EQ(args->find("strategy")->str, "parameter check");
  // Timestamps are monotonic within the export.
  EXPECT_LE(events->array[0].find("ts")->number,
            events->array[2].find("ts")->number);
}

TEST(ObsJson, ParserRejectsMalformedInput) {
  EXPECT_THROW(obs::json_parse(""), DecodeError);
  EXPECT_THROW(obs::json_parse("{"), DecodeError);
  EXPECT_THROW(obs::json_parse("{\"a\":}"), DecodeError);
  EXPECT_THROW(obs::json_parse("[1,]"), DecodeError);
  EXPECT_THROW(obs::json_parse("\"unterminated"), DecodeError);
  EXPECT_THROW(obs::json_parse("{} trailing"), DecodeError);

  const obs::JsonValue v =
      obs::json_parse(R"({"s":"a\"b","n":-2.5e1,"t":true,"x":null,"a":[1]})");
  EXPECT_EQ(v.find("s")->str, "a\"b");
  EXPECT_DOUBLE_EQ(v.find("n")->number, -25.0);
  EXPECT_TRUE(v.find("t")->boolean);
  EXPECT_TRUE(v.find("x")->is_null());
  ASSERT_EQ(v.find("a")->array.size(), 1u);
}

TEST(ObsTimer, ScopedTimerIsGatedByTheGlobalSwitch) {
  ObsGlobalGuard guard;
  obs::Histogram h;
  obs::set_timing_enabled(false);
  { obs::ScopedTimer t(&h); }
  EXPECT_EQ(h.count(), 0u);  // off: no clock reads, no samples
  obs::set_timing_enabled(true);
  { obs::ScopedTimer t(&h); }
  EXPECT_EQ(h.count(), 1u);
}

TEST(ObsCheckerIntegration, BlockedExploitEmitsViolationEventWithStrategy) {
  ObsGlobalGuard guard;
  obs::EventTracer tracer(1 << 10);
  obs::set_tracer(&tracer);
  obs::set_timing_enabled(true);

  // Parameter-only checker on a VENOM-vulnerable FDC.
  FdcDevice fdc{FdcDevice::Vulns{.cve_2015_3456 = true}};
  IoBus bus;
  bus.map(IoSpace::kPio, FdcDevice::kBasePort, FdcDevice::kPortSpan, &fdc);
  const spec::EsCfg cfg = pipeline::build_spec(fdc, [&] {
    guest::FdcDriver drv(&bus);
    drv.reset();
    std::vector<uint8_t> sector(512, 0x42);
    drv.write_sector(0, 0, 1, sector);
  });
  checker::CheckerConfig config;
  config.enable_indirect = false;
  config.enable_conditional = false;
  auto checker = pipeline::deploy(cfg, fdc, bus, config);

  guest::FdcDriver drv(&bus);
  drv.write_fifo(FdcDevice::kCmdDriveSpec);
  for (int i = 0; i < 700; ++i) {
    drv.write_fifo(0x01);
  }
  EXPECT_TRUE(fdc.halted());
  EXPECT_TRUE(fdc.incidents().empty());

  bool found = false;
  for (const obs::TraceEvent& e : tracer.snapshot()) {
    if (e.type == obs::EventType::kViolation) {
      EXPECT_EQ(tracer.string_at(e.name), "violation");
      EXPECT_EQ(tracer.string_at(e.cat), "fdc");
      EXPECT_EQ(tracer.string_at(e.detail), "parameter check");
      found = true;
    }
  }
  EXPECT_TRUE(found) << "blocked exploit produced no violation event";

  // The per-strategy latency histogram was populated (timing was on) under
  // the strategies="parameter" label.
  const obs::Histogram* hist = obs::metrics().find_histogram(
      "checker_check_latency_ns",
      obs::label({{"device", "fdc"}, {"strategies", "parameter"}}));
  ASSERT_NE(hist, nullptr);
  EXPECT_GT(hist->count(), 0u);
  EXPECT_GT(checker->stats().check_ns, 0u);
}

}  // namespace
}  // namespace sedspec
