// I/O bus with a pre-access proxy hook.
//
// Dispatches guest PMIO/MMIO accesses to mapped devices. An IoProxy — the
// ES-Checker in deployment (paper Fig. 1, phase 3) — sees every access
// *before* the device executes it and can veto it; this is the paper's
// "anomaly detection before the execution of emulated devices".
#pragma once

#include <atomic>
#include <cstdint>
#include <vector>

#include "expr/io.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "vdev/device.h"

namespace sedspec {

class IoProxy {
 public:
  virtual ~IoProxy() = default;
  /// Returns false to block the access (the write is dropped / the read
  /// returns 0). The proxy may also halt the device.
  ///
  /// Contract: hooks must not throw — a proxy is expected to be its own
  /// containment domain (EsChecker resolves internal faults via its
  /// FailurePolicy). The bus still backstops a violating proxy: an escaped
  /// exception is swallowed, counted in proxy_fault_count(), and treated as
  /// fail-closed (the access is blocked).
  virtual bool before_access(Device& device, const IoAccess& io) = 0;

  /// Called after the device executed a non-blocked access. For reads,
  /// `io.value` carries the value the device returned.
  virtual void after_access(Device& device, const IoAccess& io);
};

class IoBus {
 public:
  IoBus();

  /// Maps [base, base+len) in `space` to `device` (non-owning).
  void map(IoSpace space, uint64_t base, uint64_t len, Device* device);

  /// Installs/removes the pre-access proxy (non-owning; nullptr to remove).
  void set_proxy(IoProxy* proxy) { proxy_ = proxy; }

  /// Guest read: dispatches to the mapped device. Unmapped reads return
  /// all-ones (x86 bus float); accesses to a halted device return 0.
  uint64_t read(IoSpace space, uint64_t addr, uint8_t size);

  /// Guest write: dispatches to the mapped device; silently ignores
  /// unmapped or halted targets, counts blocked accesses.
  void write(IoSpace space, uint64_t addr, uint8_t size, uint64_t value);

  [[nodiscard]] uint64_t access_count() const { return accesses_; }
  [[nodiscard]] uint64_t blocked_count() const { return blocked_; }
  /// Exceptions that escaped the proxy hooks (contract violations absorbed
  /// by the bus backstop). A healthy deployment keeps this at zero.
  [[nodiscard]] uint64_t proxy_fault_count() const { return proxy_faults_; }
  void reset_stats() { accesses_ = blocked_ = proxy_faults_ = 0; }

  /// VM-exit cost model for the performance benchmarks: every dispatched
  /// access busy-waits this long, standing in for the KVM exit +
  /// kernel->QEMU round trip a real trapped PMIO/MMIO access pays (several
  /// microseconds on the paper's testbed). Zero (the default) disables it;
  /// the functional tests never enable it. See DESIGN.md §1.
  void set_access_latency_ns(uint64_t ns) { access_latency_ns_ = ns; }
  [[nodiscard]] uint64_t access_latency_ns() const {
    return access_latency_ns_;
  }

  /// How the exit cost is paid. kSpin (default) busy-waits — faithful for
  /// single-VM latency measurements. kSleep blocks the thread instead,
  /// modeling the trapped vCPU yielding the core during the exit — the
  /// right model for multi-shard throughput runs, where concurrent VMs
  /// overlap their I/O waits (and the only one that scales on a
  /// constrained-core host). See DESIGN.md §9.
  enum class LatencyModel : uint8_t { kSpin, kSleep };
  void set_access_latency_model(LatencyModel m) { latency_model_ = m; }
  [[nodiscard]] LatencyModel access_latency_model() const {
    return latency_model_;
  }

  /// Shard-ownership guard for the concurrent enforcement layer: each bus
  /// (and its devices, checker, shadow state) is owned by exactly one shard
  /// thread, and that single-threaded discipline is what makes the
  /// non-atomic device/checker internals race-free. bind_owner_thread()
  /// records the calling thread; from then on read()/write() from any other
  /// thread increments owner_violations() (relaxed counter — never throws
  /// on the hot path, tests assert it stays zero). clear_owner_thread()
  /// lifts the binding (e.g. before handing the bus to a new shard).
  void bind_owner_thread();
  void clear_owner_thread() {
    owner_token_.store(0, std::memory_order_relaxed);
  }
  [[nodiscard]] uint64_t owner_violations() const {
    return owner_violations_.load(std::memory_order_relaxed);
  }

  [[nodiscard]] Device* device_at(IoSpace space, uint64_t addr) const;

 private:
  struct Mapping {
    IoSpace space;
    uint64_t base;
    uint64_t len;
    Device* device;
  };

  void exit_cost() const;
  void check_owner();
  bool proxy_allows(Device& dev, const IoAccess& io);
  void proxy_done(Device& dev, const IoAccess& io);
  void note_access() {
    ++accesses_;
    obs_accesses_->inc();
  }
  void note_blocked() {
    ++blocked_;
    obs_blocked_->inc();
  }
  /// Emits an io_access trace event when a verbose tracer is installed.
  /// Inline gate: the no-tracer (default) path is one relaxed load.
  void trace_access(const Device& dev, const IoAccess& io) const {
    if (obs::EventTracer* tr = obs::tracer()) {
      trace_access_slow(*tr, dev, io);
    }
  }
  void trace_access_slow(obs::EventTracer& tr, const Device& dev,
                         const IoAccess& io) const;

  std::vector<Mapping> mappings_;
  IoProxy* proxy_ = nullptr;
  uint64_t accesses_ = 0;
  uint64_t blocked_ = 0;
  uint64_t proxy_faults_ = 0;
  uint64_t access_latency_ns_ = 0;
  LatencyModel latency_model_ = LatencyModel::kSpin;
  // Owner token: hash of the bound thread id with bit 0 forced on (so 0
  // unambiguously means "unbound"). Relaxed loads on the access path.
  std::atomic<uint64_t> owner_token_{0};
  std::atomic<uint64_t> owner_violations_{0};
  // Process-wide totals in the default obs registry (resolved once at
  // construction; relaxed-atomic increments on the access path).
  obs::Counter* obs_accesses_;
  obs::Counter* obs_blocked_;
  obs::Counter* obs_proxy_faults_;
};

/// Busy-waits for `ns` nanoseconds (shared by the bus exit model and the
/// device backend model).
void spin_wait_ns(uint64_t ns);

}  // namespace sedspec
