#include "obs/timeseries.h"

#include <algorithm>
#include <cmath>
#include <sstream>

#include "common/assert.h"
#include "obs/json.h"

namespace sedspec::obs {

uint64_t window_percentile(const uint64_t (&buckets)[Histogram::kBuckets],
                           uint64_t count, uint64_t max_bound, double q) {
  if (count == 0) {
    return 0;
  }
  q = std::min(std::max(q, 0.0), 1.0);
  const uint64_t target =
      std::max<uint64_t>(1, static_cast<uint64_t>(std::ceil(q * count)));
  uint64_t cumulative = 0;
  for (size_t i = 0; i < Histogram::kBuckets; ++i) {
    cumulative += buckets[i];
    if (cumulative >= target) {
      return std::min(Histogram::bucket_upper(i), max_bound);
    }
  }
  return max_bound;
}

const WindowCounter* WindowSample::find_counter(std::string_view name,
                                                std::string_view labels) const {
  for (const WindowCounter& c : counters) {
    if (c.name == name && c.labels == labels) {
      return &c;
    }
  }
  return nullptr;
}

const WindowGauge* WindowSample::find_gauge(std::string_view name,
                                            std::string_view labels) const {
  for (const WindowGauge& g : gauges) {
    if (g.name == name && g.labels == labels) {
      return &g;
    }
  }
  return nullptr;
}

const WindowHistogram* WindowSample::find_histogram(
    std::string_view name, std::string_view labels) const {
  for (const WindowHistogram& h : histograms) {
    if (h.name == name && h.labels == labels) {
      return &h;
    }
  }
  return nullptr;
}

uint64_t WindowSample::counter_delta_sum(std::string_view name) const {
  uint64_t total = 0;
  for (const WindowCounter& c : counters) {
    if (c.name == name) {
      total += c.delta;
    }
  }
  return total;
}

std::optional<WindowHistogram> WindowSample::merged_histogram(
    std::string_view name) const {
  std::optional<WindowHistogram> merged;
  for (const WindowHistogram& h : histograms) {
    if (h.name != name) {
      continue;
    }
    if (!merged) {
      merged.emplace();
      merged->name = std::string(name);
    }
    for (size_t i = 0; i < Histogram::kBuckets; ++i) {
      merged->buckets[i] += h.buckets[i];
    }
    merged->count += h.count;
    merged->sum += h.sum;
    merged->max_bound = std::max(merged->max_bound, h.max_bound);
  }
  if (merged) {
    merged->p50 =
        window_percentile(merged->buckets, merged->count, merged->max_bound,
                          0.50);
    merged->p90 =
        window_percentile(merged->buckets, merged->count, merged->max_bound,
                          0.90);
    merged->p99 =
        window_percentile(merged->buckets, merged->count, merged->max_bound,
                          0.99);
    merged->p999 =
        window_percentile(merged->buckets, merged->count, merged->max_bound,
                          0.999);
  }
  return merged;
}

TimeSeries::TimeSeries(const MetricsRegistry* registry, TimeSeriesConfig cfg)
    : registry_(registry), cfg_(cfg) {
  SEDSPEC_REQUIRE(registry_ != nullptr);
  SEDSPEC_REQUIRE(cfg_.window_capacity > 0);
}

namespace {

/// Series that appear mid-run have no entry in the previous snapshot;
/// their base value is zero (the registry zero-initializes on creation,
/// so delta-vs-zero is exact, not an approximation).
template <typename Entry>
const Entry* find_prev(const std::vector<Entry>& prev, const Entry& cur) {
  for (const Entry& p : prev) {
    if (p.name == cur.name && p.labels == cur.labels) {
      return &p;
    }
  }
  return nullptr;
}

}  // namespace

const WindowSample& TimeSeries::sample(uint64_t now_ns) {
  MetricsRegistry::Snapshot cur = registry_->snapshot();
  WindowSample w;
  w.index = next_index_++;
  w.t_start_ns = have_base_ ? base_ns_ : now_ns;
  w.t_end_ns = now_ns;
  const double seconds =
      static_cast<double>(w.t_end_ns - w.t_start_ns) / 1e9;

  w.counters.reserve(cur.counters.size());
  for (const auto& c : cur.counters) {
    const auto* prev = find_prev(base_.counters, c);
    WindowCounter wc;
    wc.name = c.name;
    wc.labels = c.labels;
    const uint64_t base = prev != nullptr ? prev->value : 0;
    wc.delta = c.value >= base ? c.value - base : 0;
    wc.rate = seconds > 0.0 ? static_cast<double>(wc.delta) / seconds : 0.0;
    w.counters.push_back(std::move(wc));
  }

  w.gauges.reserve(cur.gauges.size());
  for (const auto& g : cur.gauges) {
    const auto* prev = find_prev(base_.gauges, g);
    WindowGauge wg;
    wg.name = g.name;
    wg.labels = g.labels;
    wg.value = g.value;
    wg.delta = g.value - (prev != nullptr ? prev->value : 0);
    w.gauges.push_back(std::move(wg));
  }

  w.histograms.reserve(cur.histograms.size());
  for (const auto& h : cur.histograms) {
    const auto* prev = find_prev(base_.histograms, h);
    WindowHistogram wh;
    wh.name = h.name;
    wh.labels = h.labels;
    for (size_t i = 0; i < Histogram::kBuckets; ++i) {
      const uint64_t base = prev != nullptr ? prev->state.buckets[i] : 0;
      const uint64_t cur_b = h.state.buckets[i];
      wh.buckets[i] = cur_b >= base ? cur_b - base : 0;
      if (wh.buckets[i] != 0) {
        wh.max_bound = Histogram::bucket_upper(i);
      }
      wh.count += wh.buckets[i];
    }
    const uint64_t base_sum = prev != nullptr ? prev->state.sum : 0;
    wh.sum = h.state.sum >= base_sum ? h.state.sum - base_sum : 0;
    // The cumulative max is whole-run; only cap the window bound with it
    // (a window can never have seen a value above the run max).
    wh.max_bound = std::min(wh.max_bound, h.state.max);
    wh.p50 = window_percentile(wh.buckets, wh.count, wh.max_bound, 0.50);
    wh.p90 = window_percentile(wh.buckets, wh.count, wh.max_bound, 0.90);
    wh.p99 = window_percentile(wh.buckets, wh.count, wh.max_bound, 0.99);
    wh.p999 = window_percentile(wh.buckets, wh.count, wh.max_bound, 0.999);
    w.histograms.push_back(std::move(wh));
  }

  base_ = std::move(cur);
  base_ns_ = now_ns;
  have_base_ = true;

  fold_aggregates(w);
  ring_.push_back(std::move(w));
  while (ring_.size() > cfg_.window_capacity) {
    ring_.pop_front();
  }
  return ring_.back();
}

namespace {

void fold_one(std::map<std::string, SeriesAggregate>& aggs,
              const std::string& key, double v) {
  auto [it, inserted] = aggs.try_emplace(key);
  SeriesAggregate& a = it->second;
  if (inserted) {
    a.min = v;
    a.max = v;
  } else {
    a.min = std::min(a.min, v);
    a.max = std::max(a.max, v);
  }
  a.sum += v;
  ++a.windows;
}

std::string series_key(const std::string& name, const std::string& labels,
                       const char* field) {
  std::string key = name;
  key += '{';
  key += labels;
  key += "}.";
  key += field;
  return key;
}

}  // namespace

void TimeSeries::fold_aggregates(const WindowSample& w) {
  for (const WindowCounter& c : w.counters) {
    fold_one(aggregates_, series_key(c.name, c.labels, "rate"), c.rate);
    fold_one(aggregates_, series_key(c.name, c.labels, "delta"),
             static_cast<double>(c.delta));
  }
  for (const WindowGauge& g : w.gauges) {
    fold_one(aggregates_, series_key(g.name, g.labels, "value"),
             static_cast<double>(g.value));
  }
  for (const WindowHistogram& h : w.histograms) {
    fold_one(aggregates_, series_key(h.name, h.labels, "p50"),
             static_cast<double>(h.p50));
    fold_one(aggregates_, series_key(h.name, h.labels, "p90"),
             static_cast<double>(h.p90));
    fold_one(aggregates_, series_key(h.name, h.labels, "p99"),
             static_cast<double>(h.p99));
    fold_one(aggregates_, series_key(h.name, h.labels, "p999"),
             static_cast<double>(h.p999));
    fold_one(aggregates_, series_key(h.name, h.labels, "count"),
             static_cast<double>(h.count));
  }
}

const SeriesAggregate* TimeSeries::find_aggregate(std::string_view key) const {
  auto it = aggregates_.find(std::string(key));
  return it == aggregates_.end() ? nullptr : &it->second;
}

std::string TimeSeries::to_json() const {
  std::ostringstream out;
  out << "{\n  \"total_windows\": " << total_windows()
      << ",\n  \"windows\": [";
  bool first_w = true;
  for (const WindowSample& w : ring_) {
    out << (first_w ? "" : ",") << "\n    {\"index\": " << w.index
        << ", \"t_start_ns\": " << w.t_start_ns
        << ", \"t_end_ns\": " << w.t_end_ns << ",\n     \"counters\": [";
    bool first = true;
    for (const WindowCounter& c : w.counters) {
      out << (first ? "" : ", ") << "{\"name\": \"" << json_escape(c.name)
          << "\", \"labels\": \"" << json_escape(c.labels)
          << "\", \"delta\": " << c.delta << ", \"rate\": " << c.rate << "}";
      first = false;
    }
    out << "],\n     \"gauges\": [";
    first = true;
    for (const WindowGauge& g : w.gauges) {
      out << (first ? "" : ", ") << "{\"name\": \"" << json_escape(g.name)
          << "\", \"labels\": \"" << json_escape(g.labels)
          << "\", \"value\": " << g.value << ", \"delta\": " << g.delta << "}";
      first = false;
    }
    out << "],\n     \"histograms\": [";
    first = true;
    for (const WindowHistogram& h : w.histograms) {
      out << (first ? "" : ", ") << "{\"name\": \"" << json_escape(h.name)
          << "\", \"labels\": \"" << json_escape(h.labels)
          << "\", \"count\": " << h.count << ", \"sum\": " << h.sum
          << ", \"p50\": " << h.p50 << ", \"p90\": " << h.p90
          << ", \"p99\": " << h.p99 << ", \"p999\": " << h.p999 << "}";
      first = false;
    }
    out << "]}";
    first_w = false;
  }
  out << "\n  ],\n  \"aggregates\": {";
  bool first = true;
  for (const auto& [key, a] : aggregates_) {
    out << (first ? "" : ",") << "\n    \"" << json_escape(key)
        << "\": {\"min\": " << a.min << ", \"max\": " << a.max
        << ", \"mean\": " << a.mean() << ", \"windows\": " << a.windows
        << "}";
    first = false;
  }
  out << "\n  }\n}\n";
  return out.str();
}

}  // namespace sedspec::obs
