// CFG analyzer: device-state parameter selection (paper §IV-B, Table I).
//
// Overlays the DeviceProgram ("source code") on the ITC-CFG (observed
// control flow) to find the control-structure fields that influence control
// flow, then filters them with the paper's two rules:
//
//   Rule 1 — variables corresponding to physical device registers;
//   Rule 2 — variables associated with the dominant vulnerability classes:
//            fixed-length buffers, counting/indexing variables, and
//            function pointers.
//
// Fields that influence a guard but match neither rule (internal phase
// flags and the like) are still tracked as control-flow dependencies so the
// execution specification can evaluate its NBTD; they are reported under a
// separate "control-flow dependency" rule tag and do not appear in the
// Table I reproduction.
//
// The analyzer also emits the observation plan: the set of sites to
// instrument for the device-state-change log — every conditional and
// indirect site observed in the ITC-CFG, plus every site whose DSOD touches
// a selected parameter (paper §IV-B: observation points are placed "at
// locations that impact the direction of the control flows").
#pragma once

#include <set>
#include <string>
#include <vector>

#include "cfg/itc_cfg.h"
#include "program/program.h"

namespace sedspec::cfg {

using sedspec::DeviceProgram;
using sedspec::FieldKind;
using sedspec::ParamId;
using sedspec::SiteId;

enum class SelectionRule : uint8_t {
  kRule1Register,
  kRule2Buffer,
  kRule2Counting,  // length / index variables
  kRule2FuncPtr,
  kControlFlowDep,  // guard dependency outside both rules
};

[[nodiscard]] std::string selection_rule_name(SelectionRule rule);

struct SelectedParam {
  ParamId param = 0;
  SelectionRule rule = SelectionRule::kRule1Register;
};

struct ParamSelection {
  /// Selected device-state parameters, in layout order.
  std::vector<SelectedParam> params;
  /// Sites to instrument with observation points.
  std::set<SiteId> observation_sites;
  /// Sites observed in the ITC-CFG but absent from the program's address
  /// range (shared-library / kernel noise that escaped the trace filter).
  std::set<FuncAddr> foreign_addrs;

  [[nodiscard]] bool is_selected(ParamId param) const;
  [[nodiscard]] std::vector<ParamId> param_ids() const;
};

/// Runs the selection over an observed ITC-CFG.
ParamSelection analyze(const ItcCfg& cfg, const DeviceProgram& program);

/// Selection from the program alone (all sites assumed reachable). Used by
/// tests and as a fallback when no trace is available.
ParamSelection analyze_static(const DeviceProgram& program);

}  // namespace sedspec::cfg
