# Empty dependencies file for network_guard.
# This may be replaced when dependencies are built.
