// End-to-end pipeline test on the FDC: train a spec from benign driver
// activity, deploy the checker, verify benign traffic stays clean and the
// Venom exploit (CVE-2015-3456) is detected by the strategies Table III
// reports (parameter check + conditional jump check, not indirect jump).
#include <gtest/gtest.h>

#include "checker/checker.h"
#include "devices/fdc.h"
#include "guest/fdc_driver.h"
#include "sedspec/pipeline.h"
#include "spec/serial.h"
#include "vdev/bus.h"

namespace sedspec {
namespace {

using checker::CheckerConfig;
using checker::EsChecker;
using checker::Mode;
using checker::Strategy;
using devices::FdcDevice;
using guest::FdcDriver;

void benign_training(FdcDriver& drv) {
  drv.reset();
  drv.specify();
  drv.configure();
  (void)drv.version();
  drv.recalibrate();
  (void)drv.sense_drive_status();
  std::vector<uint8_t> sector(FdcDevice::kSectorSize);
  for (uint8_t track = 0; track < 4; ++track) {
    drv.seek(track);
    for (uint8_t sec = 1; sec <= 3; ++sec) {
      for (size_t i = 0; i < sector.size(); ++i) {
        sector[i] = static_cast<uint8_t>(track + sec + i);
      }
      drv.write_sector(track, 0, sec, sector);
      std::vector<uint8_t> back(FdcDevice::kSectorSize);
      drv.read_sector(track, 0, sec, back);
      ASSERT_EQ(back, sector);
    }
  }
}

struct Harness {
  FdcDevice device;
  IoBus bus;
  FdcDriver driver;
  spec::EsCfg cfg;
  std::unique_ptr<EsChecker> checker;

  explicit Harness(FdcDevice::Vulns vulns = {},
                   CheckerConfig config = {})
      : device(vulns), driver(&bus) {
    bus.map(IoSpace::kPio, FdcDevice::kBasePort, FdcDevice::kPortSpan,
            &device);
    cfg = pipeline::build_spec(device, [this] {
      FdcDriver train(&bus);
      benign_training(train);
    });
    checker = pipeline::deploy(cfg, device, bus, config);
  }
};

TEST(FdcPipeline, BenignWorkloadIsClean) {
  Harness h;
  benign_training(h.driver);
  EXPECT_EQ(h.checker->stats().blocked, 0u);
  EXPECT_EQ(h.checker->stats().warnings, 0u);
  EXPECT_EQ(h.checker->stats().rounds, h.checker->stats().clean_rounds);
  EXPECT_FALSE(h.device.halted());
  EXPECT_TRUE(h.device.incidents().empty());
}

TEST(FdcPipeline, SpecHasExpectedShape) {
  Harness h;
  EXPECT_GT(h.cfg.blocks.size(), 10u);
  EXPECT_GT(h.cfg.commands.size(), 5u);
  EXPECT_FALSE(h.cfg.params.empty());
  // Venom-relevant parameters must be selected.
  const auto& layout = h.device.program().layout();
  bool has_fifo = false, has_data_pos = false, has_msr = false;
  for (ParamId p : h.cfg.params) {
    if (layout.field(p).name == "fifo") has_fifo = true;
    if (layout.field(p).name == "data_pos") has_data_pos = true;
    if (layout.field(p).name == "msr") has_msr = true;
  }
  EXPECT_TRUE(has_fifo);
  EXPECT_TRUE(has_data_pos);
  EXPECT_TRUE(has_msr);
}

// Drives the Venom exploit: DRIVE SPECIFICATION command followed by a flood
// of parameter bytes that never carry the terminator bit.
void run_venom(FdcDriver& drv, int bytes) {
  drv.write_fifo(FdcDevice::kCmdDriveSpec);
  for (int i = 0; i < bytes; ++i) {
    drv.write_fifo(0x01);  // bit 7 clear: never terminates
  }
}

TEST(FdcPipeline, VenomCorruptsUnprotectedDevice) {
  FdcDevice device(FdcDevice::Vulns{.cve_2015_3456 = true});
  IoBus bus;
  bus.map(IoSpace::kPio, FdcDevice::kBasePort, FdcDevice::kPortSpan, &device);
  FdcDriver drv(&bus);
  drv.reset();
  run_venom(drv, 700);
  EXPECT_TRUE(device.has_incident(IncidentKind::kOobWrite));
}

TEST(FdcPipeline, VenomDetectedByParameterCheckAlone) {
  CheckerConfig config;
  config.enable_indirect = false;
  config.enable_conditional = false;
  Harness h(FdcDevice::Vulns{.cve_2015_3456 = true}, config);
  run_venom(h.driver, 700);
  EXPECT_GT(h.checker->stats().blocked, 0u);
  EXPECT_TRUE(h.checker->last_result().any(Strategy::kParameter) ||
              h.checker->stats().violations_by_strategy[0] > 0);
  EXPECT_TRUE(h.device.halted());
  // Blocked before the device performed the out-of-bounds write.
  EXPECT_FALSE(h.device.has_incident(IncidentKind::kOobWrite));
}

TEST(FdcPipeline, VenomDetectedByConditionalCheckAlone) {
  CheckerConfig config;
  config.enable_parameter = false;
  config.enable_indirect = false;
  Harness h(FdcDevice::Vulns{.cve_2015_3456 = true}, config);
  run_venom(h.driver, 700);
  EXPECT_GT(h.checker->stats().violations_by_strategy[2], 0u);
  EXPECT_TRUE(h.device.halted());
}

TEST(FdcPipeline, VenomNotDetectedByIndirectCheckAlone) {
  CheckerConfig config;
  config.enable_parameter = false;
  config.enable_conditional = false;
  Harness h(FdcDevice::Vulns{.cve_2015_3456 = true}, config);
  run_venom(h.driver, 700);
  EXPECT_EQ(h.checker->stats().violations_by_strategy[1], 0u);
  EXPECT_FALSE(h.device.halted());
  // The exploit went through: ground-truth corruption on the device.
  EXPECT_TRUE(h.device.has_incident(IncidentKind::kOobWrite));
}

TEST(FdcPipeline, RareCommandIsAFalsePositive) {
  CheckerConfig config;
  config.mode = Mode::kEnhancement;
  Harness h({}, config);
  // READ ID is legal but was not in the training mix.
  (void)h.driver.read_id();
  EXPECT_GT(h.checker->stats().warnings, 0u);
  EXPECT_FALSE(h.device.halted());
  // The device still works normally afterwards.
  const uint64_t warnings = h.checker->stats().warnings;
  std::vector<uint8_t> sector(FdcDevice::kSectorSize, 0xaa);
  h.driver.write_sector(1, 0, 1, sector);
  std::vector<uint8_t> back(FdcDevice::kSectorSize);
  h.driver.read_sector(1, 0, 1, back);
  EXPECT_EQ(back, sector);
  EXPECT_EQ(h.checker->stats().warnings, warnings);
}

TEST(FdcPipeline, SpecSerializationRoundTrips) {
  Harness h;
  const auto bytes = spec::serialize(h.cfg);
  const spec::EsCfg restored = spec::deserialize(bytes);
  EXPECT_EQ(restored.device_name, h.cfg.device_name);
  EXPECT_EQ(restored.blocks.size(), h.cfg.blocks.size());
  EXPECT_EQ(restored.commands.size(), h.cfg.commands.size());
  EXPECT_EQ(restored.entry_dispatch.size(), h.cfg.entry_dispatch.size());
  EXPECT_EQ(restored.params, h.cfg.params);
  EXPECT_EQ(spec::serialize(restored), bytes);
}

}  // namespace
}  // namespace sedspec
