// full_vm: one virtual machine, five protected emulated devices.
//
// Builds the paper's whole evaluation fleet on a single I/O bus — FDC and
// ESP SCSI on PMIO, SDHCI and USB EHCI on MMIO, PCNet on PMIO — trains an
// execution specification per device, deploys all five ES-Checkers behind
// one CheckerSet proxy, runs mixed guest I/O, and then lets a hostile
// tenant attack two of the devices. The compromised devices are halted;
// the rest of the VM keeps running.
#include <cstdio>

#include "checker/checker_set.h"
#include "common/log.h"
#include "devices/ehci.h"
#include "devices/esp_scsi.h"
#include "devices/fdc.h"
#include "devices/pcnet.h"
#include "devices/sdhci.h"
#include "guest/ehci_driver.h"
#include "guest/esp_driver.h"
#include "guest/fdc_driver.h"
#include "guest/pcnet_driver.h"
#include "guest/sdhci_driver.h"
#include "sedspec/pipeline.h"

using namespace sedspec;
using namespace sedspec::devices;

int main() {
  set_log_level(LogLevel::kOff);

  GuestMemory mem(1 << 20);
  // Two of the five devices run unpatched ("old QEMU"), as a hostile tenant
  // would hope.
  FdcDevice fdc(FdcDevice::Vulns{.cve_2015_3456 = true});
  SdhciDevice sdhci(SdhciDevice::Vulns{.cve_2021_3409 = true});
  EhciDevice ehci(&mem);
  PcnetDevice pcnet(&mem);
  EspScsiDevice esp(&mem);

  IoBus bus;
  bus.map(IoSpace::kPio, FdcDevice::kBasePort, FdcDevice::kPortSpan, &fdc);
  bus.map(IoSpace::kPio, EspScsiDevice::kBasePort, EspScsiDevice::kPortSpan,
          &esp);
  bus.map(IoSpace::kPio, PcnetDevice::kBasePort, PcnetDevice::kPortSpan,
          &pcnet);
  bus.map(IoSpace::kMmio, SdhciDevice::kBaseAddr, SdhciDevice::kMmioSpan,
          &sdhci);
  bus.map(IoSpace::kMmio, EhciDevice::kBaseAddr, EhciDevice::kMmioSpan,
          &ehci);

  std::printf("training execution specifications for all five devices...\n");
  std::vector<uint8_t> block(512, 0x42);
  std::vector<uint8_t> back(512);

  spec::EsCfg fdc_cfg = pipeline::build_spec(fdc, [&] {
    guest::FdcDriver drv(&bus);
    drv.reset();
    drv.specify();
    drv.write_sector(0, 0, 1, block);
    drv.read_sector(0, 0, 1, back);
  });
  spec::EsCfg sdhci_cfg = pipeline::build_spec(sdhci, [&] {
    guest::SdhciDriver drv(&bus);
    drv.init_card();
    drv.write_block(0, block);
    drv.read_block(0, back);
    drv.write_block_with_reprogram(1, block);
  });
  spec::EsCfg ehci_cfg = pipeline::build_spec(ehci, [&] {
    guest::EhciDriver drv(&bus, &mem);
    drv.start_controller();
    drv.interrupt_poll();
    drv.write_block(0, block);
    drv.read_block(0, back);
  });
  spec::EsCfg pcnet_cfg = pipeline::build_spec(pcnet, [&] {
    guest::PcnetDriver drv(&bus, &mem);
    drv.setup({.tx_ring_len = 16,
               .rx_ring_len = 16,
               .loopback = true,
               .append_fcs = true});
    for (int i = 0; i < 3; ++i) {
      drv.send(std::vector<uint8_t>(200 + 100 * static_cast<size_t>(i), 0x33),
               1);
      (void)drv.poll_rx();
      drv.ack_irq();
    }
  });
  spec::EsCfg esp_cfg = pipeline::build_spec(esp, [&] {
    guest::EspDriver drv(&bus, &mem);
    drv.bus_reset();
    (void)drv.inquiry(true);
    drv.write_blocks(0, 1, block);
    drv.read_blocks(0, 1, back);
  });

  checker::CheckerSet set;
  set.attach(fdc_cfg, fdc);
  set.attach(sdhci_cfg, sdhci);
  set.attach(ehci_cfg, ehci);
  set.attach(pcnet_cfg, pcnet);
  set.attach(esp_cfg, esp);
  bus.set_proxy(&set);
  std::printf("deployed %zu checkers behind one bus proxy\n\n", set.size());

  std::printf("mixed guest I/O across the fleet...\n");
  {
    guest::FdcDriver f(&bus);
    f.write_sector(1, 0, 2, block);
    guest::SdhciDriver s(&bus);
    s.write_block(2, block);
    guest::EhciDriver e(&bus, &mem);
    e.read_block(0, back);
    guest::PcnetDriver p(&bus, &mem);
    p.setup({.tx_ring_len = 16,
             .rx_ring_len = 16,
             .loopback = true,
             .append_fcs = true});
    p.send(std::vector<uint8_t>(300, 0x77), 1);
    (void)p.poll_rx();
    p.ack_irq();
    guest::EspDriver sc(&bus, &mem);
    sc.read_blocks(0, 1, back);
  }
  for (const Device* d : std::initializer_list<const Device*>{
           &fdc, &sdhci, &ehci, &pcnet, &esp}) {
    std::printf("  %-9s %6llu rounds checked, blocked %llu\n",
                d->name().c_str(),
                (unsigned long long)set.checker_for(*d)->stats().rounds,
                (unsigned long long)set.checker_for(*d)->stats().blocked);
  }

  std::printf("\nhostile tenant attacks the FDC (Venom) and the SD card "
              "(CVE-2021-3409)...\n");
  {
    guest::FdcDriver f(&bus);
    f.write_fifo(FdcDevice::kCmdDriveSpec);
    for (int i = 0; i < 700; ++i) {
      f.write_fifo(0x01);
    }
    guest::SdhciDriver s(&bus);
    s.w16(SdhciDevice::kRegBlkCnt, 1);
    s.w32(SdhciDevice::kRegArg, 1);
    s.w16(SdhciDevice::kRegCmd,
          static_cast<uint16_t>(SdhciDevice::kCmdWriteSingle) << 8);
    for (int i = 0; i < 64; ++i) {
      s.w8(SdhciDevice::kRegBData, 0x41);
    }
    s.w16(SdhciDevice::kRegBlkSize, 16);
    s.w8(SdhciDevice::kRegBData, 0x42);
  }
  std::printf("  fdc:   halted=%s corrupted=%s\n",
              fdc.halted() ? "yes" : "no",
              fdc.incidents().empty() ? "no" : "YES");
  std::printf("  sdhci: halted=%s corrupted=%s\n",
              sdhci.halted() ? "yes" : "no",
              sdhci.incidents().empty() ? "no" : "YES");

  std::printf("\nthe rest of the VM is unaffected:\n");
  {
    guest::EspDriver sc(&bus, &mem);
    std::vector<uint8_t> data(512, 0x5c);
    sc.write_blocks(3, 1, data);
    std::vector<uint8_t> check(512);
    sc.read_blocks(3, 1, check);
    std::printf("  scsi-esp round trip: %s\n",
                check == data ? "ok" : "FAILED");
    guest::EhciDriver e(&bus, &mem);
    e.write_block(4, data);
    std::vector<uint8_t> check2(512);
    e.read_block(4, check2);
    std::printf("  usb-ehci round trip: %s\n",
                check2 == data ? "ok" : "FAILED");
  }
  const bool good = fdc.halted() && sdhci.halted() &&
                    fdc.incidents().empty() && sdhci.incidents().empty() &&
                    !esp.halted() && !ehci.halted() && !pcnet.halted();
  std::printf("\n%s\n", good ? "containment successful."
                             : "UNEXPECTED containment failure!");
  return good ? 0 : 1;
}
