// Guest-side ESP SCSI driver model (sym53c9x-style).
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "devices/esp_scsi.h"
#include "vdev/bus.h"
#include "vdev/memory.h"

namespace sedspec::guest {

class EspDriver {
 public:
  EspDriver(sedspec::IoBus* bus, sedspec::GuestMemory* mem)
      : bus_(bus), mem_(mem) {}

  void out8(uint64_t reg, uint8_t v);
  [[nodiscard]] uint8_t in8(uint64_t reg);

  void bus_reset();
  void flush_fifo();
  void set_transfer_count(uint16_t tc);
  void set_dma_address(uint32_t addr);

  /// Non-DMA SELECT-with-ATN: identify message + CDB through the FIFO.
  void select_fifo(std::span<const uint8_t> cdb);
  /// DMA SELECT-with-ATN: CDB fetched from guest memory.
  void select_dma(std::span<const uint8_t> cdb);
  /// DMA TRANSFER INFO for the data phase.
  void transfer_dma(uint64_t guest_addr, uint16_t len);
  /// ICCS + read status/message + MESSAGE ACCEPTED.
  void complete();

  // Full SCSI operations (training / workload vocabulary).
  void test_unit_ready(bool dma_select);
  std::vector<uint8_t> inquiry(bool dma_select);
  std::vector<uint8_t> request_sense();
  void read_blocks(uint32_t lba, uint8_t blocks, std::span<uint8_t> out);
  void write_blocks(uint32_t lba, uint8_t blocks,
                    std::span<const uint8_t> data);

  /// Rare-but-legal controller command (FP source).
  void set_atn();

  [[nodiscard]] uint64_t io_count() const { return io_count_; }

 private:
  static constexpr uint64_t kCdbAddr = 0x8000;
  static constexpr uint64_t kDataAddr = 0x90000;

  sedspec::IoBus* bus_;
  sedspec::GuestMemory* mem_;
  uint64_t io_count_ = 0;
};

}  // namespace sedspec::guest
