#include "spec/diff.h"

#include <sstream>

#include "spec/builder.h"

namespace sedspec::spec {

SpecDiff diff(const EsCfg& a, const EsCfg& b) {
  if (a.device_name != b.device_name) {
    throw BuildError("diffing specifications of different devices");
  }
  const auto ea = edge_keys(a);
  const auto eb = edge_keys(b);
  SpecDiff d;
  for (const auto& e : ea) {
    if (eb.contains(e)) {
      ++d.common;
    } else {
      d.only_a.insert(e);
    }
  }
  for (const auto& e : eb) {
    if (!ea.contains(e)) {
      d.only_b.insert(e);
    }
  }
  return d;
}

std::string to_text(const SpecDiff& d) {
  std::ostringstream out;
  out << d.common << " common edges, " << d.only_a.size() << " only in A, "
      << d.only_b.size() << " only in B\n";
  for (const auto& e : d.only_a) {
    out << "  -A " << e << "\n";
  }
  for (const auto& e : d.only_b) {
    out << "  +B " << e << "\n";
  }
  return out.str();
}

}  // namespace sedspec::spec
