// Property tests for expression/statement serialization and diagnostic
// attribution.
#include <gtest/gtest.h>

#include "common/rng.h"
#include "program/arena.h"
#include "spec/serial.h"

namespace sedspec {
namespace {

ExprRef random_expr(Rng& rng, int depth) {
  const IntType types[] = {IntType::kU8,  IntType::kU16, IntType::kU32,
                           IntType::kU64, IntType::kI8,  IntType::kI16,
                           IntType::kI32, IntType::kI64};
  const IntType t = types[rng.below(8)];
  if (depth <= 0 || rng.chance(0.3)) {
    switch (rng.below(4)) {
      case 0:
        return eb::c(rng.next_u64(), t);
      case 1:
        return eb::param(static_cast<ParamId>(rng.below(16)), t);
      case 2:
        return eb::local(static_cast<LocalId>(rng.below(8)), t);
      default:
        return eb::io(static_cast<IoField>(rng.below(5)), t);
    }
  }
  switch (rng.below(4)) {
    case 0:
      return eb::un(static_cast<UnaryOp>(rng.below(3)),
                    random_expr(rng, depth - 1), t);
    case 1:
      return eb::bin(static_cast<BinaryOp>(rng.below(18)),
                     random_expr(rng, depth - 1), random_expr(rng, depth - 1),
                     t);
    case 2:
      return eb::cast(random_expr(rng, depth - 1), t);
    default:
      return eb::buf_load(static_cast<ParamId>(rng.below(16)),
                          random_expr(rng, depth - 1), t);
  }
}

class ExprSerial : public ::testing::TestWithParam<uint64_t> {};

INSTANTIATE_TEST_SUITE_P(Seeds, ExprSerial,
                         ::testing::Values(2, 7, 19, 41, 83, 167));

TEST_P(ExprSerial, RandomTreesRoundTripByteStably) {
  Rng rng(GetParam());
  for (int i = 0; i < 200; ++i) {
    const ExprRef original = random_expr(rng, 5);
    ByteWriter w1;
    spec::write_expr(w1, original);
    ByteReader r(w1.bytes());
    const ExprRef restored = spec::read_expr(r);
    EXPECT_TRUE(r.done());
    ByteWriter w2;
    spec::write_expr(w2, restored);
    EXPECT_EQ(w1.bytes(), w2.bytes());
    // The printer agrees too (a cheap structural-equality witness).
    EXPECT_EQ(to_string(*original), to_string(*restored));
  }
}

TEST(ExprSerial, StatementsRoundTrip) {
  Rng rng(4);
  for (int i = 0; i < 100; ++i) {
    Stmt s;
    switch (rng.below(4)) {
      case 0:
        s = sb::assign(static_cast<ParamId>(rng.below(8)),
                       random_expr(rng, 3), "note");
        break;
      case 1:
        s = sb::assign_local(static_cast<LocalId>(rng.below(8)),
                             random_expr(rng, 3));
        break;
      case 2:
        s = sb::buf_store(static_cast<ParamId>(rng.below(8)),
                          random_expr(rng, 2), random_expr(rng, 2), "w");
        break;
      default:
        s = sb::buf_fill(static_cast<ParamId>(rng.below(8)),
                         random_expr(rng, 2), random_expr(rng, 2));
        break;
    }
    ByteWriter w1;
    spec::write_stmt(w1, s);
    ByteReader r(w1.bytes());
    const Stmt restored = spec::read_stmt(r);
    ByteWriter w2;
    spec::write_stmt(w2, restored);
    EXPECT_EQ(w1.bytes(), w2.bytes());
    EXPECT_EQ(to_string(s), to_string(restored));
  }
}

TEST(DiagAttribution, FirstAnomalyCarriesTheStatementNote) {
  StateLayout layout("S");
  const ParamId a = layout.add_scalar("a", FieldKind::kRegister, IntType::kU8);
  StateArena arena(&layout);
  EvalDiag diag;
  EvalCtx ctx;
  ctx.state = &arena;
  ctx.checked = true;
  ctx.diag = &diag;
  const Stmt overflowing =
      sb::assign(a,
                 eb::add(eb::c(200, IntType::kU8), eb::c(100, IntType::kU8),
                         IntType::kU8),
                 "a = x + y  /* the culprit */");
  exec_stmt(overflowing, ctx);
  ASSERT_EQ(diag.kind, EvalDiag::Kind::kIntegerOverflow);
  EXPECT_NE(diag.describe().find("the culprit"), std::string::npos);
  // A second anomaly must not overwrite the first attribution.
  const Stmt another = sb::assign(
      a,
      eb::add(eb::c(255, IntType::kU8), eb::c(1, IntType::kU8), IntType::kU8),
      "innocent bystander");
  exec_stmt(another, ctx);
  EXPECT_NE(diag.describe().find("the culprit"), std::string::npos);
  EXPECT_EQ(diag.describe().find("bystander"), std::string::npos);
}

}  // namespace
}  // namespace sedspec
