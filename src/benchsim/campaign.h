// Evaluation campaigns (paper §VII-B1).
//
// run_fp_campaign — the long-term false-positive study behind Tables II and
// III: the three interaction modes run interleaved on a virtual clock until
// the target duration; every test case whose traffic SEDSpec flags is a
// false positive (the whole workload is legal). Rare-but-legal operations
// are injected with a per-device probability, reproducing the paper's
// finding that FPs "are exclusively linked to exceedingly rare device
// commands".
//
// run_effective_coverage — the coverage metric of Table III: a one-virtual-
// hour benign fuzz over the FULL legal vocabulary approximates the set of
// legitimate-behavior paths; effective coverage is the fraction of those
// paths that the training-derived ES-CFG contains.
#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "guest/workload.h"

namespace sedspec::benchsim {

struct FpSnapshot {
  double hours = 0;
  uint64_t false_positives = 0;
};

struct FpCampaignResult {
  std::vector<FpSnapshot> snapshots;
  uint64_t total_cases = 0;
  uint64_t flagged_cases = 0;
  uint64_t total_rounds = 0;  // I/O interactions checked

  [[nodiscard]] double fpr() const {
    return total_cases == 0
               ? 0.0
               : static_cast<double>(flagged_cases) /
                     static_cast<double>(total_cases);
  }
};

/// Requires the workload to be trained + deployed already (enhancement mode
/// so warnings do not halt the device). By default the three interaction
/// modes run interleaved; pass `only_mode` to run a single mode for the
/// whole duration (the paper applies "each interaction mode to each device
/// for 10 hours, 20 hours, and 30 hours", §VII-B1).
FpCampaignResult run_fp_campaign(
    guest::DeviceWorkload& workload, double total_hours, double rare_prob,
    uint64_t seed, const std::vector<double>& snapshot_hours,
    std::optional<guest::InteractionMode> only_mode = std::nullopt);

/// Per-device rare-operation probability per test case, calibrated so the
/// realized false-positive rates land in the paper's reported range
/// (0.09% - 0.17%).
[[nodiscard]] double default_rare_prob(const std::string& device_name);

/// Builds a training spec and a one-virtual-hour benign-fuzz spec on a
/// fresh pass over `workload`'s device, returning |trained ∩ fuzzed| /
/// |fuzzed| over edge keys. Call on a workload that has NOT been deployed.
double run_effective_coverage(guest::DeviceWorkload& workload,
                              uint64_t seed);

}  // namespace sedspec::benchsim
