// CheckerSet: one VM, several protected devices on the same bus. A
// compromise attempt against one device is contained without disturbing
// the others.
#include <gtest/gtest.h>

#include "checker/checker_set.h"
#include "devices/esp_scsi.h"
#include "obs/metrics.h"
#include "devices/fdc.h"
#include "guest/esp_driver.h"
#include "guest/fdc_driver.h"
#include "sedspec/pipeline.h"

namespace sedspec {
namespace {

using checker::CheckerSet;
using devices::EspScsiDevice;
using devices::FdcDevice;

struct VmEnv {
  GuestMemory mem{1 << 20};
  FdcDevice fdc{FdcDevice::Vulns{.cve_2015_3456 = true}};
  EspScsiDevice esp{&mem};
  IoBus bus;
  spec::EsCfg fdc_cfg;
  spec::EsCfg esp_cfg;
  CheckerSet set;

  VmEnv() {
    bus.map(IoSpace::kPio, FdcDevice::kBasePort, FdcDevice::kPortSpan, &fdc);
    bus.map(IoSpace::kPio, EspScsiDevice::kBasePort,
            EspScsiDevice::kPortSpan, &esp);
    fdc_cfg = pipeline::build_spec(fdc, [&] {
      guest::FdcDriver drv(&bus);
      drv.reset();
      std::vector<uint8_t> sector(512, 0x42);
      drv.write_sector(0, 0, 1, sector);
      std::vector<uint8_t> back(512);
      drv.read_sector(0, 0, 1, back);
    });
    esp_cfg = pipeline::build_spec(esp, [&] {
      guest::EspDriver drv(&bus, &mem);
      drv.bus_reset();
      std::vector<uint8_t> block(512, 0x17);
      drv.write_blocks(0, 1, block);
      std::vector<uint8_t> back(512);
      drv.read_blocks(0, 1, back);
    });
    set.attach(fdc_cfg, fdc);
    set.attach(esp_cfg, esp);
    bus.set_proxy(&set);
  }
};

TEST(CheckerSet, RoutesPerDeviceAndStaysCleanOnBenignTraffic) {
  VmEnv vm;
  EXPECT_EQ(vm.set.size(), 2u);
  guest::FdcDriver fdc_drv(&vm.bus);
  guest::EspDriver esp_drv(&vm.bus, &vm.mem);
  std::vector<uint8_t> sector(512, 0x5a);
  fdc_drv.write_sector(0, 0, 1, sector);
  std::vector<uint8_t> block(512, 0x3c);
  esp_drv.write_blocks(0, 1, block);
  EXPECT_EQ(vm.set.checker_for(vm.fdc)->stats().blocked, 0u);
  EXPECT_EQ(vm.set.checker_for(vm.esp)->stats().blocked, 0u);
  EXPECT_GT(vm.set.checker_for(vm.fdc)->stats().rounds, 0u);
  EXPECT_GT(vm.set.checker_for(vm.esp)->stats().rounds, 0u);
}

TEST(CheckerSet, CompromiseOfOneDeviceLeavesOthersRunning) {
  VmEnv vm;
  guest::FdcDriver fdc_drv(&vm.bus);
  // Venom against the FDC...
  fdc_drv.write_fifo(FdcDevice::kCmdDriveSpec);
  for (int i = 0; i < 700; ++i) {
    fdc_drv.write_fifo(0x01);
  }
  EXPECT_TRUE(vm.fdc.halted());
  EXPECT_TRUE(vm.fdc.incidents().empty());
  // ...while the SCSI disk keeps serving the tenant.
  guest::EspDriver esp_drv(&vm.bus, &vm.mem);
  std::vector<uint8_t> block(512, 0x77);
  esp_drv.write_blocks(2, 1, block);
  std::vector<uint8_t> back(512);
  esp_drv.read_blocks(2, 1, back);
  EXPECT_EQ(back, block);
  EXPECT_FALSE(vm.esp.halted());
  EXPECT_EQ(vm.set.checker_for(vm.esp)->stats().blocked, 0u);
}

// Tripwire: CheckerStats is aggregated field-by-field in merge() and
// exported field-by-field by publish_checker_stats(). If this assert fires
// you added (or removed) a field — update merge(), publish_checker_stats(),
// and the MergeSumsEveryField test below in the same change.
static_assert(sizeof(checker::CheckerStats) == 19 * sizeof(uint64_t),
              "CheckerStats changed size: update merge()/"
              "publish_checker_stats()/MergeSumsEveryField");

TEST(CheckerStats, MergeSumsEveryField) {
  checker::CheckerStats a;
  a.rounds = 1;
  a.clean_rounds = 2;
  a.blocked = 3;
  a.warnings = 4;
  a.violations_by_strategy[0] = 5;
  a.violations_by_strategy[1] = 6;
  a.violations_by_strategy[2] = 7;
  a.rollbacks = 8;
  a.total_steps = 9;
  a.contained_faults = 10;
  a.fail_closed_faults = 11;
  a.fail_open_faults = 12;
  a.degraded_rounds = 13;
  a.quarantines = 14;
  a.self_heals = 15;
  a.check_ns = 16;
  a.reports_emitted = 17;
  a.reports_offered = 18;
  a.redeploy_retries = 19;

  checker::CheckerStats b;
  b.rounds = 100;
  b.clean_rounds = 200;
  b.blocked = 300;
  b.warnings = 400;
  b.violations_by_strategy[0] = 500;
  b.violations_by_strategy[1] = 600;
  b.violations_by_strategy[2] = 700;
  b.rollbacks = 800;
  b.total_steps = 900;
  b.contained_faults = 1000;
  b.fail_closed_faults = 1100;
  b.fail_open_faults = 1200;
  b.degraded_rounds = 1300;
  b.quarantines = 1400;
  b.self_heals = 1500;
  b.check_ns = 1600;
  b.reports_emitted = 1700;
  b.reports_offered = 1800;
  b.redeploy_retries = 1900;

  a.merge(b);
  EXPECT_EQ(a.rounds, 101u);
  EXPECT_EQ(a.clean_rounds, 202u);
  EXPECT_EQ(a.blocked, 303u);
  EXPECT_EQ(a.warnings, 404u);
  EXPECT_EQ(a.violations_by_strategy[0], 505u);
  EXPECT_EQ(a.violations_by_strategy[1], 606u);
  EXPECT_EQ(a.violations_by_strategy[2], 707u);
  EXPECT_EQ(a.rollbacks, 808u);
  EXPECT_EQ(a.total_steps, 909u);
  EXPECT_EQ(a.contained_faults, 1010u);
  EXPECT_EQ(a.fail_closed_faults, 1111u);
  EXPECT_EQ(a.fail_open_faults, 1212u);
  EXPECT_EQ(a.degraded_rounds, 1313u);
  EXPECT_EQ(a.quarantines, 1414u);
  EXPECT_EQ(a.self_heals, 1515u);
  EXPECT_EQ(a.check_ns, 1616u);
  EXPECT_EQ(a.reports_emitted, 1717u);
  EXPECT_EQ(a.reports_offered, 1818u);
  EXPECT_EQ(a.redeploy_retries, 1919u);
}

TEST(CheckerSet, PublishMetricsExportsPerCheckerAndFleetGauges) {
  VmEnv vm;
  guest::FdcDriver fdc_drv(&vm.bus);
  std::vector<uint8_t> sector(512, 0x5a);
  fdc_drv.write_sector(0, 0, 1, sector);

  obs::MetricsRegistry reg;
  vm.set.publish_metrics(reg);
  const obs::Gauge* fdc_rounds =
      reg.find_gauge("checker_rounds", obs::label({{"device", "fdc"}}));
  const obs::Gauge* fleet_rounds =
      reg.find_gauge("checker_rounds", obs::label({{"device", "fleet"}}));
  ASSERT_NE(fdc_rounds, nullptr);
  ASSERT_NE(fleet_rounds, nullptr);
  EXPECT_GT(fdc_rounds->value(), 0);
  // Fleet aggregation covers both attached checkers.
  EXPECT_EQ(fleet_rounds->value(),
            static_cast<int64_t>(vm.set.aggregate_stats().rounds));
  EXPECT_GE(fleet_rounds->value(), fdc_rounds->value());
}

TEST(CheckerSet, UncheckedDevicePassesThrough) {
  GuestMemory mem(1 << 20);
  FdcDevice fdc;
  IoBus bus;
  bus.map(IoSpace::kPio, FdcDevice::kBasePort, FdcDevice::kPortSpan, &fdc);
  CheckerSet set;  // empty: nothing attached
  bus.set_proxy(&set);
  guest::FdcDriver drv(&bus);
  drv.reset();
  EXPECT_EQ(drv.version(), 0x90);
  EXPECT_EQ(set.checker_for(fdc), nullptr);
}

}  // namespace
}  // namespace sedspec
