// ES-Checker: runtime protection (paper §VI, Fig. 1 ③).
//
// Installed as the bus proxy, the checker simulates each I/O interaction on
// the execution specification *before* the emulated device executes it: it
// traverses the ES-CFG from the entry block, interpreting DSOD on a shadow
// device state (a StateArena mirroring the control structure layout, so
// simulated out-of-bounds stores corrupt adjacent shadow fields exactly as
// the exploit would corrupt the real struct) and following NBTD transitions.
//
// Three check strategies (§VI-A):
//   Parameter check     — UBSan-style integer overflow on every evaluated
//                         expression, and buffer-bounds validation whenever
//                         a *device-state-derived* index reads or writes a
//                         state buffer. (Indices derived from non-state
//                         temporaries are exactly the paper's CVE-2015-7504
//                         blind spot and are not bounds-checked.)
//   Indirect-jump check — at indirect blocks, the function-pointer field's
//                         shadow value must be a trained legitimate target.
//   Conditional-jump    — untrained branch directions, untrained commands,
//                         untrained I/O access kinds, command-access-table
//                         violations, and per-round block-visit counts
//                         beyond the trained bound (the concrete form we
//                         give "branches never traversed under normal
//                         operations" for loop-shaped control flow, which
//                         is how the CVE-2016-7909 infinite loop is caught).
//
// Two working modes (§VI-B):
//   kProtection  — any violation blocks the access and halts the device;
//   kEnhancement — only parameter-check violations block; the other two
//                  strategies alert warnings and execution continues (the
//                  shadow state is resynchronized from the device after a
//                  warning round so one warning does not cascade).
#pragma once

#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "program/arena.h"
#include "spec/es_cfg.h"
#include "vdev/bus.h"

namespace sedspec::checker {

using sedspec::Device;
using sedspec::IoAccess;
using sedspec::SiteId;

enum class Strategy : uint8_t {
  kParameter = 0,
  kIndirectJump = 1,
  kConditionalJump = 2,
};

[[nodiscard]] std::string strategy_name(Strategy s);

/// Alert severity per strategy (paper §VIII future work: "classify the
/// alert levels based on different check strategies"). Parameter-check
/// findings are "directly related to vulnerability exploitation and do not
/// cause false positives" (§VI-B) — critical; indirect-jump findings mean a
/// corrupted code pointer — high; conditional-jump findings may be
/// rare-command false positives — warning.
enum class Severity : uint8_t { kCritical = 0, kHigh = 1, kWarning = 2 };

[[nodiscard]] Severity severity_of(Strategy s);
[[nodiscard]] std::string severity_name(Severity s);

enum class Mode : uint8_t { kProtection, kEnhancement };

struct Violation {
  Strategy strategy = Strategy::kParameter;
  SiteId site = sedspec::kInvalidSite;  // block where detected
  std::string detail;

  [[nodiscard]] Severity severity() const { return severity_of(strategy); }
};

struct CheckResult {
  std::vector<Violation> violations;
  bool blocked = false;  // the access was vetoed
  bool halted = false;   // the device was halted (protection mode)
  uint64_t steps = 0;    // ES-CFG blocks traversed

  [[nodiscard]] bool clean() const { return violations.empty(); }
  [[nodiscard]] bool any(Strategy s) const;
};

struct CheckerConfig {
  Mode mode = Mode::kProtection;

  // Per-strategy switches (the paper's case studies "activate only one
  // check strategy for each experiment").
  bool enable_parameter = true;
  bool enable_indirect = true;
  bool enable_conditional = true;

  /// Per-round visit bound = max(slack_min, trained_max * slack_multiplier).
  uint64_t visit_slack_multiplier = 8;
  uint64_t visit_slack_min = 64;
  /// Absolute traversal budget per round.
  uint64_t max_steps = 1u << 20;
  /// Resynchronize the shadow state from the device after a warning round
  /// (enhancement mode) so a single warning does not cascade.
  bool resync_after_warning = true;
  /// Record violations but never block or halt (evaluation aid: lets a
  /// whole exploit run to completion while counting what each strategy
  /// would have reported round by round).
  bool monitor_only = false;
  /// Rollback recovery (paper §VIII future work: "using rollback to restore
  /// the virtual machine state to a previous point before the
  /// exploitation"): instead of halting on a blocked access, restore the
  /// device's control structure from the last clean checkpoint and keep the
  /// device available. Costs one arena copy per clean round.
  bool rollback_on_violation = false;
};

struct CheckerStats {
  uint64_t rounds = 0;
  uint64_t clean_rounds = 0;
  uint64_t blocked = 0;
  uint64_t warnings = 0;
  uint64_t violations_by_strategy[3] = {0, 0, 0};
  uint64_t rollbacks = 0;
  uint64_t total_steps = 0;
};

class EsChecker final : public sedspec::IoProxy {
 public:
  /// Attaches to `device`: the shadow state is initialized from the
  /// device's control structure (paper §V-A: "initialized with the values
  /// from the emulated device control structure upon booting").
  EsChecker(const spec::EsCfg* cfg, Device* device, CheckerConfig config = {});

  // IoProxy -------------------------------------------------------------
  bool before_access(Device& device, const IoAccess& io) override;
  void after_access(Device& device, const IoAccess& io) override;

  /// Core traversal: simulates one I/O round, returns every violation.
  /// Does not apply the mode policy (before_access does).
  [[nodiscard]] CheckResult check(const IoAccess& io);

  /// Re-copies the shadow state from the device (used after reset).
  void resync();

  [[nodiscard]] const CheckerStats& stats() const { return stats_; }
  void reset_stats() { stats_ = {}; }

  [[nodiscard]] const CheckResult& last_result() const { return last_; }
  [[nodiscard]] sedspec::StateArena& shadow() { return shadow_; }
  [[nodiscard]] const CheckerConfig& config() const { return config_; }
  void set_mode(Mode mode) { config_.mode = mode; }

 private:
  struct Traversal;

  /// Construction-time per-block acceleration data: direct block pointer,
  /// the sync locals its expressions reference, which DSOD statements get
  /// buffer-bounds validation (state-derived indices only, §VI-A), and the
  /// precomputed per-round visit bound.
  struct BlockAux {
    const spec::EsBlock* block = nullptr;
    std::vector<sedspec::LocalId> syncs;
    std::vector<uint8_t> stmt_bounds;
    uint64_t visit_bound = 0;
  };

  [[nodiscard]] bool strategy_enabled(Strategy s) const;
  void resolve_syncs(const BlockAux& aux, const IoAccess& io);
  void exec_dsod(const BlockAux& aux, Traversal& t);
  [[nodiscard]] bool index_is_state_derived(const sedspec::ExprRef& e) const;
  void build_aux();

  const spec::EsCfg* cfg_;
  Device* device_;
  CheckerConfig config_;
  sedspec::StateArena shadow_;
  std::optional<uint64_t> active_cmd_;
  CheckerStats stats_;
  CheckResult last_;
  bool pending_resync_ = false;

  std::vector<BlockAux> aux_;                           // by SiteId
  std::vector<std::pair<sedspec::IoKey, SiteId>> entries_;  // flat dispatch
  std::unique_ptr<sedspec::StateArena> checkpoint_;  // rollback mode only
  std::vector<uint32_t> visits_;       // by SiteId, epoch-validated
  std::vector<uint32_t> visit_epoch_;  // by SiteId
  uint32_t epoch_ = 0;
};

}  // namespace sedspec::checker
