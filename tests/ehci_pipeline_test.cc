// USB EHCI end-to-end: benign control transfers clean; CVE-2020-14364
// detected by the parameter check (both out-of-bounds instances) and the
// indirect-jump check (clobbered interrupt pointer), not the conditional
// check — matching Table III. CVE-2016-1568 (use-after-free with no device
// state transition) is NOT detected: the paper's known miss.
#include <gtest/gtest.h>

#include "checker/checker.h"
#include "devices/ehci.h"
#include "guest/ehci_driver.h"
#include "sedspec/pipeline.h"
#include "vdev/bus.h"
#include "vdev/memory.h"

namespace sedspec {
namespace {

using checker::CheckerConfig;
using checker::EsChecker;
using checker::Mode;
using checker::Strategy;
using devices::EhciDevice;
using guest::EhciDriver;

void benign_training(EhciDriver& drv) {
  drv.start_controller();
  drv.interrupt_poll();
  std::vector<uint8_t> block(EhciDevice::kBlockSize);
  for (uint16_t b = 0; b < 4; ++b) {
    for (size_t i = 0; i < block.size(); ++i) {
      block[i] = static_cast<uint8_t>(b * 7 + i);
    }
    drv.write_block(b, block);
    std::vector<uint8_t> back(EhciDevice::kBlockSize);
    drv.read_block(b, back);
    ASSERT_EQ(back, block);
  }
  // Multi-chunk transfers and clamped (short) variants.
  std::vector<uint8_t> big(2048, 0x5b);
  drv.write_block(8, big, /*chunk=*/512);
  std::vector<uint8_t> big_back(2048);
  drv.read_block(8, big_back, /*chunk=*/256);
  ASSERT_EQ(big_back, big);
  std::vector<uint8_t> small(128, 0x21);
  drv.write_block_short(12, small);
  std::vector<uint8_t> small_back(128);
  drv.read_block_short(12, small_back);
  ASSERT_EQ(small_back, small);
  drv.interrupt_poll();
  drv.interrupt_poll();
}

struct Harness {
  GuestMemory mem{1 << 20};
  EhciDevice device;
  IoBus bus;
  EhciDriver driver;
  spec::EsCfg cfg;
  std::unique_ptr<EsChecker> checker;

  explicit Harness(EhciDevice::Vulns vulns = {}, CheckerConfig config = {})
      : device(&mem, vulns), driver(&bus, &mem) {
    bus.map(IoSpace::kMmio, EhciDevice::kBaseAddr, EhciDevice::kMmioSpan,
            &device);
    cfg = pipeline::build_spec(device, [this] {
      EhciDriver train(&bus, &mem);
      benign_training(train);
    });
    checker = pipeline::deploy(cfg, device, bus, config);
  }
};

TEST(EhciPipeline, BenignWorkloadIsClean) {
  Harness h;
  benign_training(h.driver);
  EXPECT_EQ(h.checker->stats().blocked, 0u);
  EXPECT_EQ(h.checker->stats().warnings, 0u);
  EXPECT_TRUE(h.device.incidents().empty());
}

// --- CVE-2020-14364 -------------------------------------------------------

// SETUP with wLength far past sizeof(data_buf), then OUT stages that march
// setup_index through and past the buffer.
void exploit_14364(EhciDriver& drv, int out_tokens) {
  drv.start_controller();
  drv.setup_packet(0x40, 0xa0, 0, 0xf000);  // wLength = 61440 > 4096
  for (int i = 0; i < out_tokens; ++i) {
    drv.token(EhciDevice::kPidOut, 4096, 0x10000);
  }
}

TEST(EhciPipeline, Cve14364CorruptsUnprotectedDevice) {
  GuestMemory mem(1 << 20);
  EhciDevice device(&mem, EhciDevice::Vulns{.cve_2020_14364 = true});
  IoBus bus;
  bus.map(IoSpace::kMmio, EhciDevice::kBaseAddr, EhciDevice::kMmioSpan,
          &device);
  EhciDriver drv(&bus, &mem);
  exploit_14364(drv, 2);
  EXPECT_TRUE(device.has_incident(IncidentKind::kOobWrite) ||
              device.has_incident(IncidentKind::kStructEscape));
  EXPECT_TRUE(device.has_incident(IncidentKind::kHijackedCall));
}

TEST(EhciPipeline, Cve14364DetectedByParameterCheckAlone) {
  CheckerConfig config;
  config.enable_indirect = false;
  config.enable_conditional = false;
  Harness h(EhciDevice::Vulns{.cve_2020_14364 = true}, config);
  exploit_14364(h.driver, 2);
  EXPECT_GT(h.checker->stats().violations_by_strategy[0], 0u);
  EXPECT_TRUE(h.device.halted());
  EXPECT_FALSE(h.device.has_incident(IncidentKind::kOobWrite));
}

TEST(EhciPipeline, Cve14364DetectedByIndirectCheckAlone) {
  CheckerConfig config;
  config.enable_parameter = false;
  config.enable_conditional = false;
  Harness h(EhciDevice::Vulns{.cve_2020_14364 = true}, config);
  exploit_14364(h.driver, 2);
  EXPECT_GT(h.checker->stats().violations_by_strategy[1], 0u);
  EXPECT_TRUE(h.device.halted());
  EXPECT_FALSE(h.device.has_incident(IncidentKind::kHijackedCall));
}

TEST(EhciPipeline, Cve14364NotDetectedByConditionalCheckAlone) {
  CheckerConfig config;
  config.enable_parameter = false;
  config.enable_indirect = false;
  Harness h(EhciDevice::Vulns{.cve_2020_14364 = true}, config);
  exploit_14364(h.driver, 2);
  EXPECT_EQ(h.checker->stats().violations_by_strategy[2], 0u);
  EXPECT_FALSE(h.device.halted());
}

TEST(EhciPipeline, Cve14364BothInstancesSeenInMonitorMode) {
  // Monitor mode lets the exploit run end to end; the parameter check must
  // report both out-of-bounds instances the paper describes: the overflow
  // past data_buf, and the later access through the corrupted (negative)
  // setup_index.
  CheckerConfig config;
  config.monitor_only = true;
  Harness h(EhciDevice::Vulns{.cve_2020_14364 = true}, config);
  exploit_14364(h.driver, 2);
  const uint64_t first = h.checker->stats().violations_by_strategy[0];
  EXPECT_GT(first, 0u);
  // The device executed the overflow: setup_index is now attacker garbage
  // (zeros from our payload -> 0). Push another OUT through the corrupted
  // state: index arithmetic now runs on corrupted fields.
  h.driver.token(EhciDevice::kPidOut, 64, 0x10000);
  EXPECT_TRUE(h.device.has_incident(IncidentKind::kOobWrite) ||
              h.device.has_incident(IncidentKind::kStructEscape));
}

// --- CVE-2016-1568: the paper's known miss ---------------------------------

void exploit_1568(EhciDriver& drv) {
  drv.start_controller();
  // Start a read transfer, then send a premature status stage: the packet
  // is freed early. The subsequent idle poll touches the freed packet.
  drv.setup_packet(0x80 | 0x40, 0xa1, 0, 256);
  drv.status_out();  // premature: no data consumed
  drv.interrupt_poll();
}

TEST(EhciPipeline, Cve1568TriggersUafOnUnprotectedDevice) {
  GuestMemory mem(1 << 20);
  EhciDevice device(&mem, EhciDevice::Vulns{.cve_2016_1568 = true});
  IoBus bus;
  bus.map(IoSpace::kMmio, EhciDevice::kBaseAddr, EhciDevice::kMmioSpan,
          &device);
  EhciDriver drv(&bus, &mem);
  exploit_1568(drv);
  EXPECT_TRUE(device.has_incident(IncidentKind::kUseAfterFree));
}

TEST(EhciPipeline, Cve1568IsMissedBySedspec) {
  // All three strategies enabled: SEDSpec still cannot see the UAF because
  // no device-state transition is involved (paper §VII-B).
  Harness h(EhciDevice::Vulns{.cve_2016_1568 = true});
  exploit_1568(h.driver);
  EXPECT_EQ(h.checker->stats().blocked, 0u);
  EXPECT_EQ(h.checker->stats().warnings, 0u);
  EXPECT_FALSE(h.device.halted());
  // ...but the damage is real.
  EXPECT_TRUE(h.device.has_incident(IncidentKind::kUseAfterFree));
}

TEST(EhciPipeline, PatchedDeviceHasNoUaf) {
  Harness h;  // no vulnerabilities
  exploit_1568(h.driver);
  EXPECT_FALSE(h.device.has_incident(IncidentKind::kUseAfterFree));
}

}  // namespace
}  // namespace sedspec
