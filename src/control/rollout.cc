#include "control/rollout.h"

#include <sstream>

#include "common/bytes.h"
#include "common/crc32.h"

namespace sedspec::control {

namespace {

constexpr uint32_t kRolloutMagic = 0x4f4c5253u;  // "SRLO"
constexpr size_t kEnvelope = spec::kSpecEnvelopeSize;

void put_u32_at(std::vector<uint8_t>& bytes, size_t pos, uint32_t v) {
  bytes[pos + 0] = static_cast<uint8_t>(v);
  bytes[pos + 1] = static_cast<uint8_t>(v >> 8);
  bytes[pos + 2] = static_cast<uint8_t>(v >> 16);
  bytes[pos + 3] = static_cast<uint8_t>(v >> 24);
}

uint32_t get_u32_at(std::span<const uint8_t> bytes, size_t pos) {
  return static_cast<uint32_t>(bytes[pos]) |
         static_cast<uint32_t>(bytes[pos + 1]) << 8 |
         static_cast<uint32_t>(bytes[pos + 2]) << 16 |
         static_cast<uint32_t>(bytes[pos + 3]) << 24;
}

spec::LoadError fail(spec::LoadStatus status, std::string detail) {
  spec::LoadError e;
  e.status = status;
  e.detail = std::move(detail);
  return e;
}

}  // namespace

std::string rollout_state_name(RolloutState s) {
  switch (s) {
    case RolloutState::kStaging:
      return "Staging";
    case RolloutState::kShadow:
      return "Shadow";
    case RolloutState::kPromoting:
      return "Promoting";
    case RolloutState::kActive:
      return "Active";
    case RolloutState::kRolledBack:
      return "RolledBack";
  }
  return "?";
}

StageDecision evaluate_stage(const RolloutThresholds& t,
                             const StageObservation& o) {
  StageDecision d;
  auto rollback = [&d](std::string reason) {
    d.verdict = StageVerdict::kRollback;
    d.reason = std::move(reason);
    return d;
  };

  // Hard safety invariant first: a shadow candidate that blocked anything
  // is a broken shadow harness, not a bad spec — never promote, never
  // retry.
  if (o.candidate_blocked > 0) {
    return rollback("shadow candidate blocked " +
                    std::to_string(o.candidate_blocked) +
                    " accesses (shadow-mode invariant violated)");
  }
  // Failure-domain feed: shard crashes and quarantine spikes roll back
  // regardless of what the candidate metrics look like — the window is
  // evidence the rollout destabilized enforcement.
  if (o.shard_failures > t.max_shard_failures) {
    return rollback(std::to_string(o.shard_failures) +
                    " shard crash(es) inside the observation window");
  }
  if (o.quarantines > t.max_quarantines) {
    return rollback("quarantine spike: " + std::to_string(o.quarantines) +
                    " fail-closed containments in the window");
  }
  if (o.report_drops > t.max_report_drops) {
    return rollback("report loss: " + std::to_string(o.report_drops) +
                    " reports dropped (monitoring blinded)");
  }
  if (o.slo_breaches > t.max_slo_breaches) {
    return rollback("SLO breach: " + std::to_string(o.slo_breaches) +
                    " burn-rate alert(s) fired inside the window");
  }
  // Delayed / incomplete metric feed: not enough shadow evidence to judge
  // the candidate. Inconclusive — retry the window, never promote blind.
  if (o.shadow_rounds < t.min_shadow_rounds) {
    d.verdict = StageVerdict::kRetry;
    std::ostringstream r;
    r << "observation incomplete: " << o.shadow_rounds << "/"
      << t.min_shadow_rounds << " shadow rounds (metric feed delayed?)";
    d.reason = r.str();
    return d;
  }

  const double rounds = static_cast<double>(o.shadow_rounds);
  const double would_block_rate = static_cast<double>(o.would_block) / rounds;
  if (would_block_rate > t.max_would_block_rate) {
    std::ostringstream r;
    r << "would-be false positives: " << o.would_block << "/"
      << o.shadow_rounds << " shadow rounds (rate " << would_block_rate
      << " > " << t.max_would_block_rate << ")";
    return rollback(r.str());
  }
  const uint64_t surplus = o.candidate_violations > o.active_violations
                               ? o.candidate_violations - o.active_violations
                               : 0;
  if (static_cast<double>(surplus) / rounds > t.max_violation_delta_rate) {
    std::ostringstream r;
    r << "candidate violation surplus: +" << surplus << " over "
      << o.shadow_rounds << " rounds";
    return rollback(r.str());
  }
  if (t.max_latency_ratio > 0) {
    // Mean per-round check cost (always cheap to derive) and the per-stage
    // histogram p99s when latency sampling was on. Either signal tripping
    // rolls back; both are skipped when the denominator is 0 (sampling
    // off).
    if (o.active_check_ns > 0 && o.active_rounds > 0 && o.shadow_rounds > 0) {
      const double active_mean = static_cast<double>(o.active_check_ns) /
                                 static_cast<double>(o.active_rounds);
      const double cand_mean = static_cast<double>(o.candidate_check_ns) /
                               static_cast<double>(o.shadow_rounds);
      if (active_mean > 0 && cand_mean / active_mean > t.max_latency_ratio) {
        std::ostringstream r;
        r << "candidate check latency " << cand_mean << " ns/round vs active "
          << active_mean << " (ratio cap " << t.max_latency_ratio << ")";
        return rollback(r.str());
      }
    }
    if (o.active_latency_p99_ns > 0 &&
        static_cast<double>(o.candidate_latency_p99_ns) /
                static_cast<double>(o.active_latency_p99_ns) >
            t.max_latency_ratio) {
      std::ostringstream r;
      r << "candidate p99 " << o.candidate_latency_p99_ns << " ns vs active "
        << o.active_latency_p99_ns << " (ratio cap " << t.max_latency_ratio
        << ")";
      return rollback(r.str());
    }
  }

  d.verdict = StageVerdict::kPromote;
  d.reason = "window clean";
  return d;
}

std::vector<uint8_t> RolloutRecord::serialize() const {
  sedspec::ByteWriter w;
  w.u32(kRolloutMagic);
  w.u32(kRolloutFormatVersion);
  w.u32(0);  // payload length, patched below
  w.u32(0);  // payload crc32, patched below
  w.str(device);
  w.u64(candidate_version);
  w.u64(baseline_version);
  w.u8(static_cast<uint8_t>(state));
  w.u32(stage_index);
  w.str(reason);
  w.varbytes(baseline_spec);
  std::vector<uint8_t> bytes = w.take();
  const std::span<const uint8_t> payload{bytes.data() + kEnvelope,
                                         bytes.size() - kEnvelope};
  put_u32_at(bytes, 8, static_cast<uint32_t>(payload.size()));
  put_u32_at(bytes, 12, crc32(payload));
  return bytes;
}

spec::LoadError RolloutRecord::load(std::span<const uint8_t> bytes,
                                    RolloutRecord& out) {
  if (bytes.size() < kEnvelope) {
    return fail(spec::LoadStatus::kTooShort,
                "rollout record holds " + std::to_string(bytes.size()) +
                    " bytes, envelope needs " + std::to_string(kEnvelope));
  }
  if (get_u32_at(bytes, 0) != kRolloutMagic) {
    return fail(spec::LoadStatus::kBadMagic, "not a rollout record");
  }
  const uint32_t version = get_u32_at(bytes, 4);
  if (version != kRolloutFormatVersion) {
    return fail(spec::LoadStatus::kVersionSkew,
                "rollout record format v" + std::to_string(version) +
                    ", loader is v" + std::to_string(kRolloutFormatVersion));
  }
  const std::span<const uint8_t> payload = bytes.subspan(kEnvelope);
  if (get_u32_at(bytes, 8) != payload.size()) {
    return fail(spec::LoadStatus::kLengthMismatch,
                "envelope claims " + std::to_string(get_u32_at(bytes, 8)) +
                    " payload bytes, " + std::to_string(payload.size()) +
                    " present");
  }
  if (get_u32_at(bytes, 12) != crc32(payload)) {
    return fail(spec::LoadStatus::kCrcMismatch,
                "rollout record integrity check failed");
  }

  RolloutRecord rec;
  try {
    sedspec::ByteReader r(payload);
    rec.device = r.str();
    rec.candidate_version = r.u64();
    rec.baseline_version = r.u64();
    const uint8_t state = r.u8();
    if (state >= kRolloutStateCount) {
      return fail(spec::LoadStatus::kMalformed,
                  "rollout state tag " + std::to_string(state) +
                      " out of range");
    }
    rec.state = static_cast<RolloutState>(state);
    rec.stage_index = r.u32();
    rec.reason = r.str();
    rec.baseline_spec = r.varbytes();
    if (r.remaining() != 0) {
      return fail(spec::LoadStatus::kMalformed,
                  std::to_string(r.remaining()) +
                      " trailing bytes after the rollout record");
    }
  } catch (const sedspec::DecodeError& e) {
    return fail(spec::LoadStatus::kMalformed, e.what());
  }

  // The nested baseline spec is the recovery artifact — if IT is corrupt,
  // the record is useless for safe resume and must be rejected whole.
  if (!rec.baseline_spec.empty()) {
    spec::LoadResult nested = spec::load(rec.baseline_spec);
    if (!nested.ok()) {
      spec::LoadError e = nested.error;
      e.detail = "nested baseline spec: " + e.detail;
      return e;
    }
    if (nested.cfg->device_name != rec.device) {
      return fail(spec::LoadStatus::kDeviceMismatch,
                  "rollout record for '" + rec.device +
                      "' carries a baseline spec for '" +
                      nested.cfg->device_name + "'");
    }
  }

  out = std::move(rec);
  spec::LoadError ok;
  return ok;
}

}  // namespace sedspec::control
