# Empty compiler generated dependencies file for sedspec.
# This may be replaced when dependencies are built.
