// Ablation A: per-I/O cost of the ES-Checker, per device and per strategy.
//
// google-benchmark microbenchmarks of one representative operation per
// device in five configurations: no checker, full protection, and each
// strategy alone. The deltas show where the runtime budget goes (DSOD
// interpretation dominates; the strategy switches themselves are cheap).
#include <benchmark/benchmark.h>

#include "gbench_json.h"
#include "guest/workload.h"

namespace {

using namespace sedspec;

enum class Config {
  kBaseline,
  kAll,
  kParamOnly,
  kIndirectOnly,
  kCondOnly,
  kAllFailOpen,  // full protection under the fail-open failure policy:
                 // shows the containment wrapper + degraded-mode branch
                 // cost nothing on the happy path
};

checker::CheckerConfig make_config(Config c) {
  checker::CheckerConfig config;
  const bool all = c == Config::kAll || c == Config::kAllFailOpen;
  config.enable_parameter = all || c == Config::kParamOnly;
  config.enable_indirect = all || c == Config::kIndirectOnly;
  config.enable_conditional = all || c == Config::kCondOnly;
  config.failure_policy = c == Config::kAllFailOpen
                              ? checker::FailurePolicy::kFailOpen
                              : checker::FailurePolicy::kFailClosed;
  return config;
}

void run_bench(benchmark::State& state, const std::string& device,
               Config config) {
  auto wl = guest::make_workload(device);
  if (config != Config::kBaseline) {
    wl->build_and_deploy(make_config(config));
  } else {
    // Train anyway so both sides pay the same warm-up, then detach.
    wl->build_and_deploy(make_config(Config::kAll));
    wl->bus().set_proxy(nullptr);
  }
  Rng rng(99);
  const uint64_t start_rounds = wl->bus().access_count();
  for (auto _ : state) {
    wl->common_operation(guest::InteractionMode::kRandom, rng);
  }
  state.SetItemsProcessed(
      static_cast<int64_t>(wl->bus().access_count() - start_rounds));
  if (wl->deployed() && config != Config::kBaseline) {
    state.counters["violations"] = static_cast<double>(
        wl->checker()->stats().violations_by_strategy[0] +
        wl->checker()->stats().violations_by_strategy[1] +
        wl->checker()->stats().violations_by_strategy[2]);
  }
}

void register_all() {
  const std::pair<const char*, Config> configs[] = {
      {"baseline", Config::kBaseline},    {"all_strategies", Config::kAll},
      {"param_only", Config::kParamOnly}, {"indirect_only", Config::kIndirectOnly},
      {"conditional_only", Config::kCondOnly},
      {"all_fail_open", Config::kAllFailOpen},
  };
  for (const std::string& device : guest::workload_names()) {
    for (const auto& [label, config] : configs) {
      const std::string name = "BM_" + device + "/" + label;
      benchmark::RegisterBenchmark(
          name.c_str(),
          [device, config = config](benchmark::State& state) {
            run_bench(state, device, config);
          })
          ->Unit(benchmark::kMicrosecond)
          ->MinTime(0.05);
    }
  }
}

}  // namespace

int main(int argc, char** argv) {
  register_all();
  bench_report::MetricSink sink("ablation_checker_cost");
  const bool format_overridden =
      bench_report::format_flag_present(argc, argv);
  benchmark::Initialize(&argc, argv);
  bench_report::run_with_capture(format_overridden, &sink);
  benchmark::Shutdown();
  sink.write_json();
  return 0;
}
