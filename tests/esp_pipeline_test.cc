// ESP SCSI end-to-end: benign traffic clean; CVE-2015-5158 and
// CVE-2016-4439 detected by the conditional-jump check only (Table III) —
// the parameter check is blind because the offending lengths/pointers reach
// the buffers through non-state temporaries, and the corruption never
// touches the interrupt pointer (it sits before the buffers, as in the real
// ESPState layout).
#include <gtest/gtest.h>

#include "checker/checker.h"
#include "devices/esp_scsi.h"
#include "guest/esp_driver.h"
#include "sedspec/pipeline.h"
#include "vdev/bus.h"
#include "vdev/memory.h"

namespace sedspec {
namespace {

using checker::CheckerConfig;
using checker::EsChecker;
using checker::Mode;
using devices::EspScsiDevice;
using guest::EspDriver;

void benign_training(EspDriver& drv) {
  drv.bus_reset();
  drv.test_unit_ready(false);
  drv.test_unit_ready(true);
  auto inq = drv.inquiry(false);
  ASSERT_EQ(inq.size(), 36u);
  (void)drv.inquiry(true);
  (void)drv.request_sense();
  std::vector<uint8_t> block(EspScsiDevice::kBlockSize);
  for (uint32_t lba = 0; lba < 4; ++lba) {
    for (size_t i = 0; i < block.size(); ++i) {
      block[i] = static_cast<uint8_t>(lba * 5 + i);
    }
    drv.write_blocks(lba, 1, block);
    std::vector<uint8_t> back(EspScsiDevice::kBlockSize);
    drv.read_blocks(lba, 1, back);
    ASSERT_EQ(back, block);
  }
  std::vector<uint8_t> multi(4 * EspScsiDevice::kBlockSize, 0x3c);
  drv.write_blocks(8, 4, multi);
  std::vector<uint8_t> multi_back(multi.size());
  drv.read_blocks(8, 4, multi_back);
  ASSERT_EQ(multi_back, multi);
}

struct Harness {
  GuestMemory mem{1 << 20};
  EspScsiDevice device;
  IoBus bus;
  EspDriver driver;
  spec::EsCfg cfg;
  std::unique_ptr<EsChecker> checker;

  explicit Harness(EspScsiDevice::Vulns vulns = {}, CheckerConfig config = {})
      : device(&mem, vulns), driver(&bus, &mem) {
    bus.map(IoSpace::kPio, EspScsiDevice::kBasePort, EspScsiDevice::kPortSpan,
            &device);
    cfg = pipeline::build_spec(device, [this] {
      EspDriver train(&bus, &mem);
      benign_training(train);
    });
    checker = pipeline::deploy(cfg, device, bus, config);
  }
};

TEST(EspPipeline, BenignWorkloadIsClean) {
  Harness h;
  benign_training(h.driver);
  EXPECT_EQ(h.checker->stats().blocked, 0u);
  EXPECT_EQ(h.checker->stats().warnings, 0u);
  EXPECT_TRUE(h.device.incidents().empty());
}

// --- CVE-2015-5158: oversized DMA CDB fetch -------------------------------

void exploit_5158(EspDriver& drv, GuestMemory& mem) {
  drv.bus_reset();
  // Vendor-specific opcode 0xff at the CDB address; huge transfer count.
  mem.w8(0x8000, 0xff);
  drv.set_dma_address(0x8000);
  drv.set_transfer_count(0xffff);
  drv.out8(EspScsiDevice::kRegCmd, EspScsiDevice::kCmdSelAtnDma);
}

TEST(EspPipeline, Cve5158CorruptsUnprotectedDevice) {
  GuestMemory mem(1 << 20);
  EspScsiDevice device(&mem, EspScsiDevice::Vulns{.cve_2015_5158 = true});
  IoBus bus;
  bus.map(IoSpace::kPio, EspScsiDevice::kBasePort, EspScsiDevice::kPortSpan,
          &device);
  EspDriver drv(&bus, &mem);
  exploit_5158(drv, mem);
  EXPECT_TRUE(device.has_incident(IncidentKind::kStructEscape) ||
              device.has_incident(IncidentKind::kOobWrite));
}

TEST(EspPipeline, Cve5158DetectedByConditionalCheckAlone) {
  CheckerConfig config;
  config.enable_parameter = false;
  config.enable_indirect = false;
  Harness h(EspScsiDevice::Vulns{.cve_2015_5158 = true}, config);
  exploit_5158(h.driver, h.mem);
  EXPECT_GT(h.checker->stats().violations_by_strategy[2], 0u);
  EXPECT_TRUE(h.device.halted());
  EXPECT_FALSE(h.device.has_incident(IncidentKind::kStructEscape));
}

TEST(EspPipeline, Cve5158NotDetectedByOtherStrategies) {
  CheckerConfig config;
  config.enable_conditional = false;
  Harness h(EspScsiDevice::Vulns{.cve_2015_5158 = true}, config);
  exploit_5158(h.driver, h.mem);
  EXPECT_EQ(h.checker->stats().violations_by_strategy[0], 0u);
  EXPECT_EQ(h.checker->stats().violations_by_strategy[1], 0u);
  EXPECT_FALSE(h.device.halted());
  EXPECT_TRUE(h.device.has_incident(IncidentKind::kStructEscape) ||
              h.device.has_incident(IncidentKind::kOobWrite));
}

// --- CVE-2016-4439: FIFO flood past ti_buf --------------------------------

void exploit_4439(EspDriver& drv) {
  drv.bus_reset();
  drv.flush_fifo();
  for (int i = 0; i < 24; ++i) {
    drv.out8(EspScsiDevice::kRegFifo, 0x41);
  }
  // The public PoC then kicks a bare TRANSFER INFO to abuse the corrupted
  // transfer state — a command no benign driver issues.
  drv.out8(EspScsiDevice::kRegCmd, EspScsiDevice::kCmdTi);
}

TEST(EspPipeline, Cve4439CorruptsUnprotectedDevice) {
  GuestMemory mem(1 << 20);
  EspScsiDevice device(&mem, EspScsiDevice::Vulns{.cve_2016_4439 = true});
  IoBus bus;
  bus.map(IoSpace::kPio, EspScsiDevice::kBasePort, EspScsiDevice::kPortSpan,
          &device);
  EspDriver drv(&bus, &mem);
  exploit_4439(drv);
  EXPECT_TRUE(device.has_incident(IncidentKind::kOobWrite));
}

TEST(EspPipeline, Cve4439DetectedByConditionalCheckAlone) {
  CheckerConfig config;
  config.enable_parameter = false;
  config.enable_indirect = false;
  Harness h(EspScsiDevice::Vulns{.cve_2016_4439 = true}, config);
  exploit_4439(h.driver);
  EXPECT_GT(h.checker->stats().violations_by_strategy[2], 0u);
  EXPECT_TRUE(h.device.halted());
}

TEST(EspPipeline, Cve4439NotDetectedByOtherStrategies) {
  CheckerConfig config;
  config.enable_conditional = false;
  Harness h(EspScsiDevice::Vulns{.cve_2016_4439 = true}, config);
  exploit_4439(h.driver);
  EXPECT_EQ(h.checker->stats().violations_by_strategy[0], 0u);
  EXPECT_EQ(h.checker->stats().violations_by_strategy[1], 0u);
  EXPECT_FALSE(h.device.halted());
  EXPECT_TRUE(h.device.has_incident(IncidentKind::kOobWrite));
}

TEST(EspPipeline, RareCommandIsAFalsePositive) {
  CheckerConfig config;
  config.mode = Mode::kEnhancement;
  Harness h({}, config);
  h.driver.set_atn();  // legal controller command, untrained
  EXPECT_GT(h.checker->stats().warnings, 0u);
  EXPECT_FALSE(h.device.halted());
  // Still functional.
  std::vector<uint8_t> block(EspScsiDevice::kBlockSize, 0x11);
  h.driver.write_blocks(2, 1, block);
  std::vector<uint8_t> back(EspScsiDevice::kBlockSize);
  h.driver.read_blocks(2, 1, back);
  EXPECT_EQ(back, block);
}

}  // namespace
}  // namespace sedspec
