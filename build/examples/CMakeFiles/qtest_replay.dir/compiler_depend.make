# Empty compiler generated dependencies file for qtest_replay.
# This may be replaced when dependencies are built.
