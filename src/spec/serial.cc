#include "spec/serial.h"

#include "common/assert.h"

namespace sedspec::spec {

namespace {
constexpr uint32_t kMagic = 0x53455343u;  // "SESC"
constexpr uint32_t kVersion = 1;
}  // namespace

void write_expr(sedspec::ByteWriter& w, const ExprRef& e) {
  if (e == nullptr) {
    w.u8(0xff);
    return;
  }
  w.u8(static_cast<uint8_t>(e->kind));
  w.u8(static_cast<uint8_t>(e->type));
  switch (e->kind) {
    case sedspec::ExprKind::kConst:
      w.u64(e->const_value);
      break;
    case sedspec::ExprKind::kParam:
      w.u16(e->param);
      break;
    case sedspec::ExprKind::kLocal:
      w.u16(e->local);
      break;
    case sedspec::ExprKind::kIoField:
      w.u8(static_cast<uint8_t>(e->io_field));
      break;
    case sedspec::ExprKind::kBufLoad:
      w.u16(e->param);
      write_expr(w, e->lhs);
      break;
    case sedspec::ExprKind::kUnary:
      w.u8(static_cast<uint8_t>(e->un_op));
      write_expr(w, e->lhs);
      break;
    case sedspec::ExprKind::kBinary:
      w.u8(static_cast<uint8_t>(e->bin_op));
      write_expr(w, e->lhs);
      write_expr(w, e->rhs);
      break;
    case sedspec::ExprKind::kCast:
      write_expr(w, e->lhs);
      break;
  }
}

ExprRef read_expr(sedspec::ByteReader& r) {
  const uint8_t tag = r.u8();
  if (tag == 0xff) {
    return nullptr;
  }
  sedspec::Expr e;
  e.kind = static_cast<sedspec::ExprKind>(tag);
  e.type = static_cast<sedspec::IntType>(r.u8());
  switch (e.kind) {
    case sedspec::ExprKind::kConst:
      e.const_value = r.u64();
      break;
    case sedspec::ExprKind::kParam:
      e.param = r.u16();
      break;
    case sedspec::ExprKind::kLocal:
      e.local = r.u16();
      break;
    case sedspec::ExprKind::kIoField:
      e.io_field = static_cast<sedspec::IoField>(r.u8());
      break;
    case sedspec::ExprKind::kBufLoad:
      e.param = r.u16();
      e.lhs = read_expr(r);
      break;
    case sedspec::ExprKind::kUnary:
      e.un_op = static_cast<sedspec::UnaryOp>(r.u8());
      e.lhs = read_expr(r);
      break;
    case sedspec::ExprKind::kBinary:
      e.bin_op = static_cast<sedspec::BinaryOp>(r.u8());
      e.lhs = read_expr(r);
      e.rhs = read_expr(r);
      break;
    case sedspec::ExprKind::kCast:
      e.lhs = read_expr(r);
      break;
    default:
      SEDSPEC_REQUIRE_MSG(false, "bad expression tag");
  }
  return std::make_shared<const sedspec::Expr>(std::move(e));
}

void write_stmt(sedspec::ByteWriter& w, const sedspec::Stmt& s) {
  w.u8(static_cast<uint8_t>(s.kind));
  w.u16(s.param);
  w.u16(s.local);
  write_expr(w, s.value);
  write_expr(w, s.index);
  write_expr(w, s.count);
  w.str(s.note);
}

sedspec::Stmt read_stmt(sedspec::ByteReader& r) {
  sedspec::Stmt s;
  s.kind = static_cast<sedspec::StmtKind>(r.u8());
  s.param = r.u16();
  s.local = r.u16();
  s.value = read_expr(r);
  s.index = read_expr(r);
  s.count = read_expr(r);
  s.note = r.str();
  return s;
}

namespace {

void write_cond_dir(sedspec::ByteWriter& w, const CondDir& d) {
  w.u8(d.observed ? 1 : 0);
  w.u8(d.ends ? 1 : 0);
  w.u16(d.succ);
}

CondDir read_cond_dir(sedspec::ByteReader& r) {
  CondDir d;
  d.observed = r.u8() != 0;
  d.ends = r.u8() != 0;
  d.succ = r.u16();
  return d;
}

}  // namespace

std::vector<uint8_t> serialize(const EsCfg& cfg) {
  sedspec::ByteWriter w;
  w.u32(kMagic);
  w.u32(kVersion);
  w.str(cfg.device_name);
  w.u64(cfg.trained_rounds);
  w.u64(cfg.blocks_before_reduction);
  w.u64(cfg.merged_conditionals);
  w.u64(cfg.spliced_blocks);

  w.u32(static_cast<uint32_t>(cfg.params.size()));
  for (ParamId p : cfg.params) {
    w.u16(p);
  }

  w.u32(static_cast<uint32_t>(cfg.entry_dispatch.size()));
  for (const auto& [key, site] : cfg.entry_dispatch) {
    w.u8(static_cast<uint8_t>(key.space));
    w.u64(key.addr);
    w.u8(key.is_write ? 1 : 0);
    w.u16(site);
  }

  w.u32(static_cast<uint32_t>(cfg.blocks.size()));
  for (const auto& [site, b] : cfg.blocks) {
    w.u16(site);
    w.u8(static_cast<uint8_t>(b.kind));
    w.str(b.name);
    w.u32(static_cast<uint32_t>(b.dsod.size()));
    for (const auto& s : b.dsod) {
      write_stmt(w, s);
    }
    write_expr(w, b.guard);
    write_expr(w, b.cmd_expr);
    write_cond_dir(w, b.taken);
    write_cond_dir(w, b.not_taken);
    w.u8(b.has_succ ? 1 : 0);
    w.u16(b.succ);
    w.u8(b.ends ? 1 : 0);
    w.u16(b.fp_param);
    w.u32(static_cast<uint32_t>(b.fp_targets.size()));
    for (FuncAddr t : b.fp_targets) {
      w.u64(t);
    }
    w.u64(b.max_visits_per_round);
    w.u8(b.merged ? 1 : 0);
    w.u32(static_cast<uint32_t>(b.cmd_dispatch.size()));
    for (const auto& [cmd, d] : b.cmd_dispatch) {
      w.u64(cmd);
      write_cond_dir(w, d);
    }
  }

  w.u32(static_cast<uint32_t>(cfg.commands.size()));
  for (const auto& [cmd, ci] : cfg.commands) {
    w.u64(cmd);
    w.u32(static_cast<uint32_t>(ci.access.size()));
    for (SiteId s : ci.access) {
      w.u16(s);
    }
    w.u64(ci.observed);
  }

  w.u32(static_cast<uint32_t>(cfg.sync_locals.size()));
  for (LocalId l : cfg.sync_locals) {
    w.u16(l);
  }
  return w.take();
}

EsCfg deserialize(std::span<const uint8_t> bytes) {
  sedspec::ByteReader r(bytes);
  SEDSPEC_REQUIRE_MSG(r.u32() == kMagic, "bad ES-CFG magic");
  SEDSPEC_REQUIRE_MSG(r.u32() == kVersion, "unsupported ES-CFG version");
  EsCfg cfg;
  cfg.device_name = r.str();
  cfg.trained_rounds = r.u64();
  cfg.blocks_before_reduction = r.u64();
  cfg.merged_conditionals = r.u64();
  cfg.spliced_blocks = r.u64();

  const uint32_t n_params = r.u32();
  for (uint32_t i = 0; i < n_params; ++i) {
    cfg.params.push_back(r.u16());
  }

  const uint32_t n_entries = r.u32();
  for (uint32_t i = 0; i < n_entries; ++i) {
    IoKey key;
    key.space = static_cast<sedspec::IoSpace>(r.u8());
    key.addr = r.u64();
    key.is_write = r.u8() != 0;
    cfg.entry_dispatch[key] = r.u16();
  }

  const uint32_t n_blocks = r.u32();
  for (uint32_t i = 0; i < n_blocks; ++i) {
    const SiteId site = r.u16();
    EsBlock b;
    b.site = site;
    b.kind = static_cast<BlockKind>(r.u8());
    b.name = r.str();
    const uint32_t n_stmts = r.u32();
    for (uint32_t j = 0; j < n_stmts; ++j) {
      b.dsod.push_back(read_stmt(r));
    }
    b.guard = read_expr(r);
    b.cmd_expr = read_expr(r);
    b.taken = read_cond_dir(r);
    b.not_taken = read_cond_dir(r);
    b.has_succ = r.u8() != 0;
    b.succ = r.u16();
    b.ends = r.u8() != 0;
    b.fp_param = r.u16();
    const uint32_t n_targets = r.u32();
    for (uint32_t j = 0; j < n_targets; ++j) {
      b.fp_targets.insert(r.u64());
    }
    b.max_visits_per_round = r.u64();
    b.merged = r.u8() != 0;
    const uint32_t n_dispatch = r.u32();
    for (uint32_t j = 0; j < n_dispatch; ++j) {
      const uint64_t cmd = r.u64();
      b.cmd_dispatch[cmd] = read_cond_dir(r);
    }
    cfg.blocks.emplace(site, std::move(b));
  }

  const uint32_t n_cmds = r.u32();
  for (uint32_t i = 0; i < n_cmds; ++i) {
    const uint64_t cmd = r.u64();
    CmdInfo ci;
    const uint32_t n_access = r.u32();
    for (uint32_t j = 0; j < n_access; ++j) {
      ci.access.insert(r.u16());
    }
    ci.observed = r.u64();
    cfg.commands.emplace(cmd, std::move(ci));
  }

  const uint32_t n_sync = r.u32();
  for (uint32_t i = 0; i < n_sync; ++i) {
    cfg.sync_locals.insert(r.u16());
  }
  SEDSPEC_REQUIRE_MSG(r.done(), "trailing bytes after ES-CFG");
  return cfg;
}

}  // namespace sedspec::spec
