#include "obs/json.h"

#include <cctype>
#include <cstdio>
#include <cstdlib>

namespace sedspec::obs {

const JsonValue* JsonValue::find(std::string_view key) const {
  if (kind != Kind::kObject) {
    return nullptr;
  }
  for (const auto& [k, v] : object) {
    if (k == key) {
      return &v;
    }
  }
  return nullptr;
}

namespace {

class Parser {
 public:
  explicit Parser(std::string_view text) : text_(text) {}

  JsonValue parse_document() {
    JsonValue v = parse_value(0);
    skip_ws();
    SEDSPEC_CHECK_DECODE(pos_ == text_.size(), "trailing bytes after JSON");
    return v;
  }

 private:
  // Exported documents nest a handful of levels; 64 is a generous bound
  // that keeps a corrupt (or adversarial) input from exhausting the stack.
  static constexpr int kMaxDepth = 64;

  void skip_ws() {
    while (pos_ < text_.size() &&
           (text_[pos_] == ' ' || text_[pos_] == '\t' || text_[pos_] == '\n' ||
            text_[pos_] == '\r')) {
      ++pos_;
    }
  }

  char peek() {
    SEDSPEC_CHECK_DECODE(pos_ < text_.size(), "truncated JSON");
    return text_[pos_];
  }

  char take() {
    char c = peek();
    ++pos_;
    return c;
  }

  void expect(char c) {
    SEDSPEC_CHECK_DECODE(take() == c,
                         std::string("expected '") + c + "' in JSON");
  }

  void expect_word(std::string_view word) {
    SEDSPEC_CHECK_DECODE(text_.substr(pos_, word.size()) == word,
                         "bad JSON literal");
    pos_ += word.size();
  }

  JsonValue parse_value(int depth) {
    SEDSPEC_CHECK_DECODE(depth < kMaxDepth, "JSON nested too deep");
    skip_ws();
    JsonValue v;
    switch (peek()) {
      case '{': {
        v.kind = JsonValue::Kind::kObject;
        take();
        skip_ws();
        if (peek() == '}') {
          take();
          return v;
        }
        while (true) {
          skip_ws();
          std::string key = parse_string();
          skip_ws();
          expect(':');
          v.object.emplace_back(std::move(key), parse_value(depth + 1));
          skip_ws();
          const char c = take();
          if (c == '}') {
            return v;
          }
          SEDSPEC_CHECK_DECODE(c == ',', "expected ',' or '}' in object");
        }
      }
      case '[': {
        v.kind = JsonValue::Kind::kArray;
        take();
        skip_ws();
        if (peek() == ']') {
          take();
          return v;
        }
        while (true) {
          v.array.push_back(parse_value(depth + 1));
          skip_ws();
          const char c = take();
          if (c == ']') {
            return v;
          }
          SEDSPEC_CHECK_DECODE(c == ',', "expected ',' or ']' in array");
        }
      }
      case '"':
        v.kind = JsonValue::Kind::kString;
        v.str = parse_string();
        return v;
      case 't':
        expect_word("true");
        v.kind = JsonValue::Kind::kBool;
        v.boolean = true;
        return v;
      case 'f':
        expect_word("false");
        v.kind = JsonValue::Kind::kBool;
        v.boolean = false;
        return v;
      case 'n':
        expect_word("null");
        return v;
      default:
        v.kind = JsonValue::Kind::kNumber;
        v.number = parse_number();
        return v;
    }
  }

  std::string parse_string() {
    expect('"');
    std::string out;
    while (true) {
      char c = take();
      if (c == '"') {
        return out;
      }
      if (c != '\\') {
        SEDSPEC_CHECK_DECODE(static_cast<unsigned char>(c) >= 0x20,
                             "unescaped control character in JSON string");
        out.push_back(c);
        continue;
      }
      c = take();
      switch (c) {
        case '"':
        case '\\':
        case '/':
          out.push_back(c);
          break;
        case 'b':
          out.push_back('\b');
          break;
        case 'f':
          out.push_back('\f');
          break;
        case 'n':
          out.push_back('\n');
          break;
        case 'r':
          out.push_back('\r');
          break;
        case 't':
          out.push_back('\t');
          break;
        case 'u': {
          unsigned code = 0;
          for (int i = 0; i < 4; ++i) {
            const char h = take();
            code <<= 4;
            if (h >= '0' && h <= '9') {
              code |= static_cast<unsigned>(h - '0');
            } else if (h >= 'a' && h <= 'f') {
              code |= static_cast<unsigned>(h - 'a' + 10);
            } else if (h >= 'A' && h <= 'F') {
              code |= static_cast<unsigned>(h - 'A' + 10);
            } else {
              SEDSPEC_CHECK_DECODE(false, "bad \\u escape in JSON string");
            }
          }
          // The exporters only emit ASCII; decode BMP code points as UTF-8
          // and reject surrogates rather than implementing pair decoding.
          SEDSPEC_CHECK_DECODE(code < 0xd800 || code > 0xdfff,
                               "surrogate \\u escape unsupported");
          if (code < 0x80) {
            out.push_back(static_cast<char>(code));
          } else if (code < 0x800) {
            out.push_back(static_cast<char>(0xc0 | (code >> 6)));
            out.push_back(static_cast<char>(0x80 | (code & 0x3f)));
          } else {
            out.push_back(static_cast<char>(0xe0 | (code >> 12)));
            out.push_back(static_cast<char>(0x80 | ((code >> 6) & 0x3f)));
            out.push_back(static_cast<char>(0x80 | (code & 0x3f)));
          }
          break;
        }
        default:
          SEDSPEC_CHECK_DECODE(false, "bad escape in JSON string");
      }
    }
  }

  double parse_number() {
    const size_t start = pos_;
    if (peek() == '-') {
      take();
    }
    SEDSPEC_CHECK_DECODE(pos_ < text_.size() && std::isdigit(peek()),
                         "bad JSON number");
    while (pos_ < text_.size() && std::isdigit(text_[pos_])) {
      ++pos_;
    }
    if (pos_ < text_.size() && text_[pos_] == '.') {
      ++pos_;
      SEDSPEC_CHECK_DECODE(pos_ < text_.size() && std::isdigit(text_[pos_]),
                           "bad JSON fraction");
      while (pos_ < text_.size() && std::isdigit(text_[pos_])) {
        ++pos_;
      }
    }
    if (pos_ < text_.size() && (text_[pos_] == 'e' || text_[pos_] == 'E')) {
      ++pos_;
      if (pos_ < text_.size() && (text_[pos_] == '+' || text_[pos_] == '-')) {
        ++pos_;
      }
      SEDSPEC_CHECK_DECODE(pos_ < text_.size() && std::isdigit(text_[pos_]),
                           "bad JSON exponent");
      while (pos_ < text_.size() && std::isdigit(text_[pos_])) {
        ++pos_;
      }
    }
    return std::strtod(std::string(text_.substr(start, pos_ - start)).c_str(),
                       nullptr);
  }

  std::string_view text_;
  size_t pos_ = 0;
};

}  // namespace

JsonValue json_parse(std::string_view text) {
  Parser parser(text);
  return parser.parse_document();
}

std::string json_escape(std::string_view s) {
  std::string out;
  out.reserve(s.size());
  for (const char c : s) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\r':
        out += "\\r";
        break;
      case '\t':
        out += "\\t";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x",
                        static_cast<unsigned>(static_cast<unsigned char>(c)));
          out += buf;
        } else {
          out.push_back(c);
        }
    }
  }
  return out;
}

}  // namespace sedspec::obs
