// Canaried rollout overhead: what does shadow-mode evaluation cost the
// fleet while a candidate spec is being rolled out?
//
// Methodology: an 8-shard FDC fleet runs the same benign workload twice.
// The steady-state pass runs with only the active spec deployed and
// timing sampling on, giving the baseline per-round check latency (mean
// and histogram p99). The rollout pass stages an identical candidate and
// drives the full canaried state machine (Shadow 25% → Shadow 100% →
// Promoting → Active) through the ControlPlane; canary shards evaluate
// BOTH checkers per access, so the window observations expose the
// check-latency p99 during rollout for the active checker (what the
// guest's verdict waits on) and the shadow candidate (monitor-only).
// Time-to-full-promotion is the wall time of run_rollout() — staging to
// the Active record, confirmation window included.
#include <chrono>
#include <cstdio>
#include <string>
#include <vector>

#include "checker/checker.h"
#include "common/log.h"
#include "control/control_plane.h"
#include "obs/metrics.h"
#include "report.h"
#include "sedspec/enforcement.h"
#include "sedspec/pipeline.h"

namespace {

using namespace sedspec;

constexpr size_t kShards = 8;
constexpr uint64_t kWindowOps = 64;

std::vector<enforce::ShardSpec> make_fleet(const std::string& label_tag) {
  std::vector<enforce::ShardSpec> fleet(kShards);
  for (size_t i = 0; i < kShards; ++i) {
    fleet[i].device = "fdc";
    fleet[i].ops = kWindowOps;
    // Same seed everywhere: identical operation mix in both passes.
    fleet[i].seed = 9000;
    fleet[i].mode = guest::InteractionMode::kSequential;
    if (!label_tag.empty()) {
      // Unique per-shard label so this pass's histogram samples are
      // isolated from the rollout windows' per-window labels.
      fleet[i].checker.metrics_label = label_tag + std::to_string(i);
    }
  }
  return fleet;
}

struct SteadySample {
  double mean_check_ns = 0;
  uint64_t p99_ns = 0;
};

SteadySample steady_state(spec::SpecStore& store) {
  enforce::ServiceConfig config;
  config.spec_poll_ops = 0;
  enforce::EnforcementService service(&store, config);
  const auto fleet = make_fleet("fdc@steady");
  const enforce::RunReport report = service.run(fleet);

  SteadySample s;
  if (report.fleet.rounds > 0) {
    s.mean_check_ns = static_cast<double>(report.fleet.check_ns) /
                      static_cast<double>(report.fleet.rounds);
  }
  obs::Histogram merged;
  for (const auto& shard : fleet) {
    const obs::Histogram* h = obs::metrics().find_histogram(
        "checker_check_latency_ns",
        obs::label({{"device", shard.checker.metrics_label},
                    {"strategies",
                     checker::strategy_set_name(shard.checker)}}));
    if (h != nullptr) {
      merged.merge(*h);
    }
  }
  s.p99_ns = merged.p99();
  return s;
}

}  // namespace

int main() {
  set_log_level(LogLevel::kError);
  bench_report::title(
      "Canaried rollout — time-to-promotion and check latency under shadow "
      "mode (8 shards)");
  bench_report::MetricSink sink("rollout");

  spec::SpecStore store;
  enforce::publish_device_specs(store, {"fdc"});
  obs::set_timing_enabled(true);

  // Baseline: the fleet with only the active spec deployed.
  const SteadySample steady = steady_state(store);
  std::printf("steady state:  mean check %.0f ns, p99 %llu ns\n",
              steady.mean_check_ns,
              static_cast<unsigned long long>(steady.p99_ns));
  sink.put("check_latency_mean_ns_steady", steady.mean_check_ns);
  sink.put("check_latency_p99_ns_steady",
           static_cast<double>(steady.p99_ns));

  // Rollout: stage an identical candidate and promote it through the full
  // state machine. Identical spec => zero would-block, clean windows.
  control::ControlPlane plane(&store);
  auto workload = guest::make_workload("fdc");
  const spec::EsCfg candidate = pipeline::build_spec(
      workload->device(), [&] { workload->training(); });
  plane.stage_candidate(spec::EsCfg(candidate));

  control::RolloutConfig rcfg;
  rcfg.stage_fractions = {0.25, 1.0};
  rcfg.observe_ops = kWindowOps;
  // Over a 64-op window p99 is effectively the max, so one scheduler
  // preemption inside a ~100 ns check inflates the candidate/active ratio
  // by orders of magnitude. The violation and would-block guardrails are
  // what this bench exercises; keep the latency cap only as a gross-
  // pathology backstop so CI load cannot flake the promotion.
  rcfg.thresholds.max_latency_ratio = 200.0;

  const auto t0 = std::chrono::steady_clock::now();
  const control::RolloutOutcome outcome =
      plane.run_rollout("fdc", make_fleet(""), rcfg);
  const auto t1 = std::chrono::steady_clock::now();
  obs::set_timing_enabled(false);

  const double promotion_ms =
      std::chrono::duration<double, std::milli>(t1 - t0).count();
  if (!outcome.promoted()) {
    std::fprintf(stderr, "rollout did not promote: %s\n",
                 outcome.record.reason.c_str());
    return 1;
  }

  // Worst window seen during the rollout: the in-rollout latency figure a
  // fleet operator would alert on.
  uint64_t active_p99 = 0;
  uint64_t cand_p99 = 0;
  double active_mean = 0;
  for (const auto& w : outcome.windows) {
    active_p99 = std::max(active_p99, w.observation.active_latency_p99_ns);
    cand_p99 = std::max(cand_p99, w.observation.candidate_latency_p99_ns);
    if (w.observation.active_rounds > 0) {
      active_mean = std::max(
          active_mean, static_cast<double>(w.observation.active_check_ns) /
                           static_cast<double>(w.observation.active_rounds));
    }
  }

  std::printf("rollout:       mean check %.0f ns, active p99 %llu ns, "
              "shadow p99 %llu ns\n",
              active_mean, static_cast<unsigned long long>(active_p99),
              static_cast<unsigned long long>(cand_p99));
  std::printf("promotion:     %.1f ms wall, %zu windows, %llu guest ops\n",
              promotion_ms, outcome.windows.size(),
              static_cast<unsigned long long>(outcome.total_ops));
  bench_report::rule(60);
  std::printf(
      "Shape check: the active checker's p99 during rollout should stay\n"
      "within the rollout engine's own guardrail (%.1fx steady state) —\n"
      "shadow evaluation happens on the same thread but the candidate's\n"
      "verdict is never waited on by the guest's blocking decision.\n",
      rcfg.thresholds.max_latency_ratio);

  sink.put("time_to_full_promotion_ms", promotion_ms);
  sink.put("windows_to_promotion",
           static_cast<double>(outcome.windows.size()));
  sink.put("rollout_guest_ops", static_cast<double>(outcome.total_ops));
  sink.put("check_latency_mean_ns_rollout_active", active_mean);
  sink.put("check_latency_p99_ns_rollout_active",
           static_cast<double>(active_p99));
  sink.put("check_latency_p99_ns_rollout_shadow",
           static_cast<double>(cand_p99));
  sink.write_json();
  return 0;
}
