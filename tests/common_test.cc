// Unit tests for the common substrate: byte serialization, deterministic
// RNG, the virtual clock, and the leveled logger.
#include <gtest/gtest.h>

#include "common/bytes.h"
#include "common/log.h"
#include "common/rng.h"
#include "common/vclock.h"

namespace sedspec {
namespace {

TEST(Log, ParseLevelAcceptsNamesDigitsAndCase) {
  EXPECT_EQ(parse_log_level("debug", LogLevel::kOff), LogLevel::kDebug);
  EXPECT_EQ(parse_log_level("INFO", LogLevel::kOff), LogLevel::kInfo);
  EXPECT_EQ(parse_log_level("Warn", LogLevel::kOff), LogLevel::kWarn);
  EXPECT_EQ(parse_log_level("warning", LogLevel::kOff), LogLevel::kWarn);
  EXPECT_EQ(parse_log_level("error", LogLevel::kOff), LogLevel::kError);
  EXPECT_EQ(parse_log_level("off", LogLevel::kDebug), LogLevel::kOff);
  EXPECT_EQ(parse_log_level("silent", LogLevel::kDebug), LogLevel::kOff);
  EXPECT_EQ(parse_log_level("0", LogLevel::kOff), LogLevel::kDebug);
  EXPECT_EQ(parse_log_level("4", LogLevel::kDebug), LogLevel::kOff);
  // Unrecognized input falls back instead of guessing.
  EXPECT_EQ(parse_log_level("", LogLevel::kWarn), LogLevel::kWarn);
  EXPECT_EQ(parse_log_level("loud", LogLevel::kError), LogLevel::kError);
  EXPECT_EQ(parse_log_level("5", LogLevel::kInfo), LogLevel::kInfo);
}

TEST(Log, MonotonicTimebaseNeverGoesBackwards) {
  const uint64_t a = monotonic_ns();
  const uint64_t b = monotonic_ns();
  EXPECT_LE(a, b);
}

TEST(Bytes, WriterReaderRoundTrip) {
  ByteWriter w;
  w.u8(0x12);
  w.u16(0x3456);
  w.u32(0x789abcde);
  w.u64(0x1122334455667788ULL);
  w.i64(-42);
  w.str("hello");
  w.varbytes(std::vector<uint8_t>{1, 2, 3});
  const auto bytes = w.take();

  ByteReader r(bytes);
  EXPECT_EQ(r.u8(), 0x12);
  EXPECT_EQ(r.u16(), 0x3456);
  EXPECT_EQ(r.u32(), 0x789abcdeu);
  EXPECT_EQ(r.u64(), 0x1122334455667788ULL);
  EXPECT_EQ(r.i64(), -42);
  EXPECT_EQ(r.str(), "hello");
  EXPECT_EQ(r.varbytes(), (std::vector<uint8_t>{1, 2, 3}));
  EXPECT_TRUE(r.done());
}

TEST(Bytes, ReaderFailsFastPastEnd) {
  std::vector<uint8_t> two = {1, 2};
  ByteReader r(two);
  EXPECT_EQ(r.u16(), 0x0201);
  EXPECT_THROW((void)r.u8(), sedspec::DecodeError);
}

TEST(Bytes, VarbytesLengthValidated) {
  ByteWriter w;
  w.u32(1000);  // claims 1000 bytes, provides none
  const auto bytes = w.take();
  ByteReader r(bytes);
  EXPECT_THROW((void)r.varbytes(), sedspec::DecodeError);
}

TEST(Bytes, HexFormat) {
  const std::vector<uint8_t> data = {0xde, 0xad, 0xbe, 0xef};
  EXPECT_EQ(to_hex(data), "deadbeef");
}

TEST(Rng, DeterministicPerSeed) {
  Rng a(7);
  Rng b(7);
  Rng c(8);
  bool diverged = false;
  for (int i = 0; i < 100; ++i) {
    const uint64_t va = a.next_u64();
    EXPECT_EQ(va, b.next_u64());
    if (va != c.next_u64()) {
      diverged = true;
    }
  }
  EXPECT_TRUE(diverged);
}

TEST(Rng, BelowAndRangeRespectBounds) {
  Rng rng(3);
  for (int i = 0; i < 1000; ++i) {
    EXPECT_LT(rng.below(17), 17u);
    const uint64_t v = rng.range(5, 9);
    EXPECT_GE(v, 5u);
    EXPECT_LE(v, 9u);
  }
}

TEST(Rng, ChanceExtremes) {
  Rng rng(4);
  for (int i = 0; i < 100; ++i) {
    EXPECT_FALSE(rng.chance(0.0));
    EXPECT_TRUE(rng.chance(1.0));
  }
}

TEST(Rng, WeightedFollowsWeights) {
  Rng rng(5);
  int counts[3] = {0, 0, 0};
  for (int i = 0; i < 30000; ++i) {
    counts[rng.weighted({1.0, 0.0, 3.0})]++;
  }
  EXPECT_EQ(counts[1], 0);
  EXPECT_GT(counts[2], counts[0] * 2);
}

TEST(VClock, AdvancesAndConverts) {
  VirtualClock clock;
  EXPECT_EQ(clock.now(), 0u);
  clock.advance_seconds(3600.0);
  EXPECT_DOUBLE_EQ(clock.hours(), 1.0);
  clock.advance(VirtualClock::kMicrosPerHour / 2);
  EXPECT_DOUBLE_EQ(clock.hours(), 1.5);
  clock.reset();
  EXPECT_EQ(clock.now(), 0u);
}

}  // namespace
}  // namespace sedspec
