#include "cfg/analyzer.h"

#include <algorithm>
#include <map>

#include "expr/expr.h"

namespace sedspec::cfg {

std::string selection_rule_name(SelectionRule rule) {
  switch (rule) {
    case SelectionRule::kRule1Register:
      return "Rule 1: physical register";
    case SelectionRule::kRule2Buffer:
      return "Rule 2: fixed-length buffer";
    case SelectionRule::kRule2Counting:
      return "Rule 2: counting/indexing";
    case SelectionRule::kRule2FuncPtr:
      return "Rule 2: function pointer";
    case SelectionRule::kControlFlowDep:
      return "control-flow dependency";
  }
  return "?";
}

bool ParamSelection::is_selected(ParamId param) const {
  return std::any_of(params.begin(), params.end(),
                     [&](const SelectedParam& p) { return p.param == param; });
}

std::vector<ParamId> ParamSelection::param_ids() const {
  std::vector<ParamId> out;
  out.reserve(params.size());
  for (const SelectedParam& p : params) {
    out.push_back(p.param);
  }
  return out;
}

namespace {

void collect_params(const sedspec::ExprRef& e, std::set<ParamId>* out) {
  if (e == nullptr) {
    return;
  }
  sedspec::visit(*e, [&](const sedspec::Expr& n) {
    if (n.kind == sedspec::ExprKind::kParam ||
        n.kind == sedspec::ExprKind::kBufLoad) {
      out->insert(n.param);
    }
  });
}

ParamSelection run_selection(const DeviceProgram& program,
                             const std::set<SiteId>& reachable,
                             std::set<FuncAddr> foreign) {
  ParamSelection sel;
  sel.foreign_addrs = std::move(foreign);

  // 1. Fields that influence control flow: referenced by a guard or a
  //    command-decision expression, or invoked at an indirect site.
  std::set<ParamId> flow_influencing;
  // 2. Fields touched by any reachable DSOD (targets and index expressions).
  std::set<ParamId> dsod_touched;

  for (SiteId id : reachable) {
    const sedspec::SiteDesc& site = program.site(id);
    collect_params(site.guard, &flow_influencing);
    collect_params(site.cmd_expr, &flow_influencing);
    if (site.kind == sedspec::BlockKind::kIndirect) {
      flow_influencing.insert(site.fp_param);
    }
    for (const sedspec::Stmt& s : site.dsod) {
      if (s.kind == sedspec::StmtKind::kAssignParam) {
        dsod_touched.insert(s.param);
      } else if (s.kind == sedspec::StmtKind::kBufStore ||
                 s.kind == sedspec::StmtKind::kBufFill) {
        dsod_touched.insert(s.param);
        collect_params(s.index, &dsod_touched);
      }
      collect_params(s.value, &dsod_touched);
      collect_params(s.count, &dsod_touched);
    }
  }

  // Apply the two selection rules over every field of the control structure
  // that the reachable code touches or branches on.
  const sedspec::StateLayout& layout = program.layout();
  for (size_t i = 0; i < layout.field_count(); ++i) {
    const auto id = static_cast<ParamId>(i);
    const sedspec::FieldDesc& f = layout.field(id);
    const bool influences = flow_influencing.contains(id);
    const bool touched = dsod_touched.contains(id) || influences;
    if (!touched) {
      continue;
    }
    switch (f.kind) {
      case FieldKind::kRegister:
        sel.params.push_back({id, SelectionRule::kRule1Register});
        break;
      case FieldKind::kBuffer:
        sel.params.push_back({id, SelectionRule::kRule2Buffer});
        break;
      case FieldKind::kLength:
      case FieldKind::kIndex:
        sel.params.push_back({id, SelectionRule::kRule2Counting});
        break;
      case FieldKind::kFuncPtr:
        sel.params.push_back({id, SelectionRule::kRule2FuncPtr});
        break;
      case FieldKind::kFlag:
      case FieldKind::kOther:
        // Needed for NBTD evaluation but outside both rules.
        if (influences) {
          sel.params.push_back({id, SelectionRule::kControlFlowDep});
        }
        break;
    }
  }

  // Observation plan: every reachable conditional/indirect/command site plus
  // every reachable site whose DSOD touches a selected parameter.
  for (SiteId id : reachable) {
    const sedspec::SiteDesc& site = program.site(id);
    if (site.kind != sedspec::BlockKind::kPlain) {
      sel.observation_sites.insert(id);
      continue;
    }
    for (const sedspec::Stmt& s : site.dsod) {
      std::set<ParamId> touched;
      if (s.kind != sedspec::StmtKind::kAssignLocal) {
        touched.insert(s.param);
      }
      collect_params(s.value, &touched);
      collect_params(s.index, &touched);
      collect_params(s.count, &touched);
      const bool relevant = std::any_of(
          touched.begin(), touched.end(),
          [&](ParamId p) { return sel.is_selected(p); });
      if (relevant) {
        sel.observation_sites.insert(id);
        break;
      }
    }
  }
  return sel;
}

}  // namespace

ParamSelection analyze(const ItcCfg& cfg, const DeviceProgram& program) {
  std::set<SiteId> reachable;
  std::set<FuncAddr> foreign;
  for (const auto& [addr, node] : cfg.nodes()) {
    if (auto site = program.site_by_addr(addr); site.has_value()) {
      reachable.insert(*site);
    } else if (!program.is_function(addr)) {
      foreign.insert(addr);
    }
  }
  return run_selection(program, reachable, std::move(foreign));
}

ParamSelection analyze_static(const DeviceProgram& program) {
  std::set<SiteId> reachable;
  for (size_t i = 0; i < program.site_count(); ++i) {
    reachable.insert(static_cast<SiteId>(i));
  }
  return run_selection(program, reachable, {});
}

}  // namespace sedspec::cfg
