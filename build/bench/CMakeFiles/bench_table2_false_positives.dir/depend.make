# Empty dependencies file for bench_table2_false_positives.
# This may be replaced when dependencies are built.
