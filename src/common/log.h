// Minimal leveled logger.
//
// The library is silent by default (level = kWarn); tests and benchmarks can
// raise or lower the level. Log output goes to stderr so benchmark stdout
// stays machine-readable.
#pragma once

#include <sstream>
#include <string>

namespace sedspec {

enum class LogLevel { kDebug = 0, kInfo = 1, kWarn = 2, kError = 3, kOff = 4 };

/// Returns the process-wide minimum level that is emitted.
LogLevel log_level();

/// Sets the process-wide minimum level that is emitted.
void set_log_level(LogLevel level);

/// Emits one formatted line to stderr if `level >= log_level()`.
void log_line(LogLevel level, const std::string& component,
              const std::string& message);

namespace detail {

class LogStream {
 public:
  LogStream(LogLevel level, std::string component)
      : level_(level), component_(std::move(component)) {}
  LogStream(const LogStream&) = delete;
  LogStream& operator=(const LogStream&) = delete;
  ~LogStream() { log_line(level_, component_, stream_.str()); }

  template <typename T>
  LogStream& operator<<(const T& value) {
    stream_ << value;
    return *this;
  }

 private:
  LogLevel level_;
  std::string component_;
  std::ostringstream stream_;
};

}  // namespace detail

inline detail::LogStream log_debug(std::string component) {
  return {LogLevel::kDebug, std::move(component)};
}
inline detail::LogStream log_info(std::string component) {
  return {LogLevel::kInfo, std::move(component)};
}
inline detail::LogStream log_warn(std::string component) {
  return {LogLevel::kWarn, std::move(component)};
}
inline detail::LogStream log_error(std::string component) {
  return {LogLevel::kError, std::move(component)};
}

}  // namespace sedspec
