// Concurrent multi-VM enforcement (DESIGN.md §9): sharded checkers over
// immutable SpecStore snapshots.
//
// The flagship scenario: 8 shards spanning all five device types replay
// benign workloads on their own threads while a writer thread keeps
// redeploying fresh spec snapshots — and nothing goes wrong: zero
// violations or blocks on benign traffic, zero lost reports, zero
// cross-thread bus accesses, and the fleet aggregate equals the sum of the
// per-shard stats. Run under the TSan preset (SEDSPEC_TSAN) this is also
// the data-race gate for the whole enforcement stack.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <thread>

#include "sedspec/enforcement.h"

namespace sedspec {
namespace {

using checker::Report;
using enforce::EnforcementService;
using enforce::RunReport;
using enforce::ServiceConfig;
using enforce::ShardSpec;

std::vector<ShardSpec> make_shards(size_t count, uint64_t ops) {
  const std::vector<std::string>& names = guest::workload_names();
  std::vector<ShardSpec> shards(count);
  for (size_t i = 0; i < count; ++i) {
    shards[i].device = names[i % names.size()];
    shards[i].ops = ops;
    shards[i].seed = 1000 + i;
    shards[i].mode = guest::InteractionMode::kSequential;
  }
  return shards;
}

TEST(Concurrency, EightShardsBenignUnderLiveRedeployStayClean) {
  spec::SpecStore store;
  enforce::publish_device_specs(store, guest::workload_names());
  ASSERT_EQ(store.size(), guest::workload_names().size());

  ServiceConfig config;
  config.spec_poll_ops = 4;
  EnforcementService service(&store, config);
  const std::vector<ShardSpec> shards = make_shards(8, 60);

  // Writer thread: keeps republishing every device's current spec (same
  // content, new version) for the whole run — a live rolling redeploy.
  std::atomic<bool> stop_writer{false};
  std::thread writer([&] {
    while (!stop_writer.load(std::memory_order_acquire)) {
      for (const std::string& name : store.device_names()) {
        store.publish(spec::EsCfg(store.current(name)->cfg));
      }
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
    }
  });

  const RunReport report = service.run(shards);
  stop_writer.store(true, std::memory_order_release);
  writer.join();

  ASSERT_TRUE(report.ok());
  ASSERT_EQ(report.shards.size(), 8u);

  uint64_t summed_rounds = 0;
  for (const enforce::ShardResult& s : report.shards) {
    SCOPED_TRACE(s.device + "#" + std::to_string(s.shard));
    EXPECT_EQ(s.ops, 60u);
    // Benign traffic against its own trained spec: nothing fires, even
    // while snapshots are being swapped underneath.
    EXPECT_EQ(s.stats.blocked, 0u);
    EXPECT_EQ(s.stats.warnings, 0u);
    for (int strat = 0; strat < 3; ++strat) {
      EXPECT_EQ(s.stats.violations_by_strategy[strat], 0u);
    }
    EXPECT_EQ(s.stats.contained_faults, 0u);
    EXPECT_EQ(s.bus_owner_violations, 0u);
    EXPECT_GT(s.stats.rounds, 0u);
    // Each redeploy strictly advances the pinned version (the writer may
    // publish faster than the shard polls, so versions can skip ahead).
    EXPECT_GE(s.final_spec_version, 1 + s.redeploys);
    summed_rounds += s.stats.rounds;
  }

  // Redeploys actually happened mid-run (the writer publishes every ~1 ms;
  // a shard's 60 checked operations take far longer than that).
  EXPECT_GT(report.total_redeploys, 0u);
  EXPECT_EQ(report.count(Report::Kind::kRedeploy), report.total_redeploys);

  // Stats merge stability: the fleet aggregate is exactly the per-shard sum.
  EXPECT_EQ(report.fleet.rounds, summed_rounds);
  EXPECT_EQ(report.total_ops, 8u * 60u);

  // Report conservation: everything pushed was drained, nothing dropped.
  EXPECT_EQ(report.reports_dropped, 0u);
  EXPECT_EQ(report.reports.size(), report.reports_pushed);
}

TEST(Concurrency, PinnedSnapshotSurvivesStoreSupersession) {
  spec::SpecStore store;
  enforce::publish_device_specs(store, {"fdc"});
  const spec::SnapshotRef pinned = store.current("fdc");
  ASSERT_NE(pinned, nullptr);

  // A checker deployed against v1 keeps working after v2/v3 supersede it.
  auto wl = guest::make_workload("fdc");
  checker::EsChecker ck(pinned, &wl->device(), {});
  wl->bus().set_proxy(&ck);
  wl->device().set_internal_activity_hook([&ck] { ck.resync(); });

  store.publish(spec::EsCfg(pinned->cfg));
  store.publish(spec::EsCfg(pinned->cfg));
  EXPECT_EQ(store.version_of("fdc"), 3u);
  EXPECT_EQ(ck.spec_version(), 1u);

  Rng rng(7);
  for (int i = 0; i < 5; ++i) {
    wl->common_operation(guest::InteractionMode::kSequential, rng);
  }
  EXPECT_GT(ck.stats().rounds, 0u);
  EXPECT_EQ(ck.stats().blocked, 0u);
  EXPECT_EQ(ck.stats().warnings, 0u);
}

TEST(Concurrency, ShardFailureIsCapturedNotThrown) {
  spec::SpecStore store;  // empty: no spec for any device
  EnforcementService service(&store);
  std::vector<ShardSpec> shards = make_shards(1, 10);
  const RunReport report = service.run(shards);
  ASSERT_EQ(report.shards.size(), 1u);
  EXPECT_FALSE(report.ok());
  EXPECT_FALSE(report.shards[0].error.empty());
  EXPECT_EQ(report.shards[0].ops, 0u);
}

// Violating traffic on one shard is attributed to that shard: a mixed run
// where one shard's checker is wired to warn (monitor mode would require
// rare ops; instead give the victim an untrained-op spec mismatch via a
// tiny traversal budget) while siblings stay benign.
TEST(Concurrency, ViolationsAreAttributedToTheEmittingShard) {
  spec::SpecStore store;
  enforce::publish_device_specs(store, {"fdc", "pcnet"});

  ServiceConfig config;
  config.spec_poll_ops = 0;  // no redeploys: isolate attribution
  EnforcementService service(&store, config);

  std::vector<ShardSpec> shards = make_shards(4, 30);
  shards[0].device = "fdc";
  shards[1].device = "pcnet";
  shards[2].device = "fdc";
  shards[3].device = "pcnet";
  // Victim shard 2: a pathologically small traversal budget makes every
  // checked round a conditional-jump finding; monitor mode keeps it
  // running (and reporting) for the whole run.
  shards[2].checker.max_steps = 1;
  shards[2].checker.monitor_only = true;

  const RunReport report = service.run(shards);
  ASSERT_TRUE(report.ok());

  EXPECT_GT(report.shards[2].stats.violations_by_strategy[2], 0u);
  for (size_t i : {size_t{0}, size_t{1}, size_t{3}}) {
    SCOPED_TRACE(i);
    EXPECT_EQ(report.shards[i].stats.warnings, 0u);
    EXPECT_EQ(report.shards[i].stats.blocked, 0u);
  }
  // Every violation report drained carries the victim's shard id. The
  // victim's burst may overflow the bounded queue — that is the designed
  // overflow policy — so the checks are conservation, not zero-drop:
  // everything accepted was drained, and every drop is accounted to the
  // victim's checker stats.
  size_t victim_reports = 0;
  for (const Report& r : report.reports) {
    if (r.kind == Report::Kind::kViolation) {
      EXPECT_EQ(r.shard, 2u);
      ++victim_reports;
    }
  }
  EXPECT_EQ(victim_reports, report.shards[2].stats.reports_emitted);
  EXPECT_EQ(report.reports.size(), report.reports_pushed);
  // The queue's drop count (single source of truth) matches the victim's
  // offered-minus-emitted derivation — conservation, no double-booking.
  EXPECT_EQ(report.reports_dropped,
            report.shards[2].stats.reports_offered -
                report.shards[2].stats.reports_emitted);
}

}  // namespace
}  // namespace sedspec
